(* Tests of the data-flow framework: the generic solver, liveness,
   reaching definitions, available expressions, bitwidth intervals,
   dominators, loops and the use/def index. *)

open Tdfa_ir
open Tdfa_dataflow

let var = Var.of_string
let lbl = Label.of_string

(* A two-block loop:
   entry: x=0; n=10; one=1; jmp header
   header: c = slt x n ; br c body exit
   body:   x = add x one ; jmp header
   exit:   ret x *)
let loop_func () =
  Func.make ~name:"loop" ~params:[]
    [
      Block.make (lbl "entry")
        [
          Instr.Const (var "x", 0);
          Instr.Const (var "n", 10);
          Instr.Const (var "one", 1);
        ]
        (Block.Jump (lbl "header"));
      Block.make (lbl "header")
        [ Instr.Binop (Instr.Slt, var "c", var "x", var "n") ]
        (Block.Branch (var "c", lbl "body", lbl "exit"));
      Block.make (lbl "body")
        [ Instr.Binop (Instr.Add, var "x", var "x", var "one") ]
        (Block.Jump (lbl "header"));
      Block.make (lbl "exit") [] (Block.Return (Some (var "x")));
    ]

let straight_line () =
  Func.make ~name:"line" ~params:[ var "a" ]
    [
      Block.make (lbl "entry")
        [
          Instr.Const (var "k", 3);
          Instr.Binop (Instr.Add, var "b", var "a", var "k");
          Instr.Binop (Instr.Mul, var "c", var "b", var "b");
        ]
        (Block.Return (Some (var "c")));
    ]

(* --- Liveness -------------------------------------------------------- *)

let set_to_strings s = List.map Var.to_string (Var.Set.elements s)

let test_liveness_loop () =
  let f = loop_func () in
  let live = Liveness.analyze f in
  Alcotest.(check (list string)) "live into header" [ "n"; "one"; "x" ]
    (set_to_strings (Liveness.live_in live (lbl "header")));
  Alcotest.(check (list string)) "live out of body" [ "n"; "one"; "x" ]
    (set_to_strings (Liveness.live_out live (lbl "body")));
  Alcotest.(check (list string)) "live into exit" [ "x" ]
    (set_to_strings (Liveness.live_in live (lbl "exit")));
  Alcotest.(check (list string)) "nothing live into entry" []
    (set_to_strings (Liveness.live_in live (lbl "entry")))

let test_liveness_per_instr () =
  let f = straight_line () in
  let live = Liveness.analyze f in
  (* After "k = 3": a and k live (b = a + k next). *)
  Alcotest.(check (list string)) "after instr 0" [ "a"; "k" ]
    (set_to_strings (Liveness.live_after_instr live (lbl "entry") 0));
  (* After "b = a + k": only b. *)
  Alcotest.(check (list string)) "after instr 1" [ "b" ]
    (set_to_strings (Liveness.live_after_instr live (lbl "entry") 1));
  Alcotest.(check (list string)) "after instr 2" [ "c" ]
    (set_to_strings (Liveness.live_after_instr live (lbl "entry") 2))

let test_liveness_pressure () =
  let f = straight_line () in
  let live = Liveness.analyze f in
  Alcotest.(check int) "pressure 2" 2 (Liveness.max_pressure live)

let test_liveness_dead_def () =
  let f =
    Func.make ~name:"dead" ~params:[]
      [
        Block.make (lbl "entry")
          [ Instr.Const (var "d", 1); Instr.Const (var "r", 2) ]
          (Block.Return (Some (var "r")));
      ]
  in
  let live = Liveness.analyze f in
  Alcotest.(check bool) "dead def never live" false
    (Var.Set.mem (var "d") (Liveness.live_after_instr live (lbl "entry") 0))

(* Property: a variable used by an instruction is live before it. *)
let test_liveness_uses_live_before () =
  List.iter
    (fun (_, f) ->
      let live = Liveness.analyze f in
      Func.iter_instrs
        (fun l i instr ->
          let before = Liveness.live_before_instr live l i in
          List.iter
            (fun u ->
              if not (Var.Set.mem u before) then
                Alcotest.failf "use %s not live before %s.%d"
                  (Var.to_string u) (Label.to_string l) i)
            (Instr.uses instr))
        f)
    Tdfa_workload.Kernels.all

(* --- Reaching definitions --------------------------------------------- *)

let test_reaching_defs_loop () =
  let f = loop_func () in
  let rd = Reaching_defs.analyze f in
  (* Both definitions of x (entry init and body increment) reach the
     header. *)
  let defs_x = Reaching_defs.defs_of_var_at rd (lbl "header") (var "x") in
  Alcotest.(check int) "two defs of x reach header" 2
    (Reaching_defs.Def_set.cardinal defs_x);
  (* Only those two definitions exist for x at exit as well. *)
  let defs_x_exit = Reaching_defs.defs_of_var_at rd (lbl "exit") (var "x") in
  Alcotest.(check int) "defs of x at exit" 2
    (Reaching_defs.Def_set.cardinal defs_x_exit)

let test_reaching_defs_kill () =
  let f =
    Func.make ~name:"kill" ~params:[]
      [
        Block.make (lbl "entry")
          [ Instr.Const (var "x", 1); Instr.Const (var "x", 2) ]
          (Block.Jump (lbl "next"));
        Block.make (lbl "next") [] (Block.Return (Some (var "x")));
      ]
  in
  let rd = Reaching_defs.analyze f in
  let defs = Reaching_defs.defs_of_var_at rd (lbl "next") (var "x") in
  Alcotest.(check int) "second def kills first" 1
    (Reaching_defs.Def_set.cardinal defs);
  match Reaching_defs.Def_set.choose_opt defs with
  | Some d -> Alcotest.(check int) "surviving def is index 1" 1 d.Reaching_defs.Def.index
  | None -> Alcotest.fail "no def"

(* --- Available expressions --------------------------------------------- *)

let test_available_exprs_diamond () =
  (* (a+b) computed in both branches is available at the join; the
     branch-specific products are not. *)
  let f =
    Func.make ~name:"avail" ~params:[ var "a"; var "b" ]
      [
        Block.make (lbl "entry")
          [ Instr.Binop (Instr.Slt, var "c", var "a", var "b") ]
          (Block.Branch (var "c", lbl "t", lbl "e"));
        Block.make (lbl "t")
          [
            Instr.Binop (Instr.Add, var "s", var "a", var "b");
            Instr.Binop (Instr.Mul, var "p", var "a", var "a");
          ]
          (Block.Jump (lbl "join"));
        Block.make (lbl "e")
          [ Instr.Binop (Instr.Add, var "s", var "a", var "b") ]
          (Block.Jump (lbl "join"));
        Block.make (lbl "join") [] (Block.Return (Some (var "s")));
      ]
  in
  let av = Available_exprs.analyze f in
  let at_join = Available_exprs.available_in av (lbl "join") in
  Alcotest.(check bool) "a+b available" true
    (Available_exprs.Expr_set.mem (Instr.Add, var "a", var "b") at_join);
  Alcotest.(check bool) "a*a not available (one branch only)" false
    (Available_exprs.Expr_set.mem (Instr.Mul, var "a", var "a") at_join);
  Alcotest.(check bool) "entry has none" true
    (Available_exprs.Expr_set.is_empty
       (Available_exprs.available_in av (lbl "entry")))

let test_available_exprs_killed_by_redef () =
  let f =
    Func.make ~name:"kill" ~params:[ var "a"; var "b" ]
      [
        Block.make (lbl "entry")
          [
            Instr.Binop (Instr.Add, var "s", var "a", var "b");
            Instr.Const (var "a", 0);
          ]
          (Block.Jump (lbl "next"));
        Block.make (lbl "next") [] (Block.Return (Some (var "s")));
      ]
  in
  let av = Available_exprs.analyze f in
  Alcotest.(check bool) "redefining an operand kills the expression" false
    (Available_exprs.Expr_set.mem
       (Instr.Add, var "a", var "b")
       (Available_exprs.available_in av (lbl "next")))

(* --- Bitwidth ----------------------------------------------------------- *)

let test_bitwidth_constants () =
  let f = straight_line () in
  let bw = Bitwidth.analyze f in
  (* k = 3 -> [3,3], 2 bits. *)
  Alcotest.(check int) "const 3 needs 2 bits" 2
    (Bitwidth.Interval.bitwidth (Bitwidth.interval_out bw (lbl "entry") (var "k")))

let test_bitwidth_comparison_is_bool () =
  let f = loop_func () in
  let bw = Bitwidth.analyze f in
  let iv = Bitwidth.interval_out bw (lbl "header") (var "c") in
  Alcotest.(check int) "slt result is one bit" 1 (Bitwidth.Interval.bitwidth iv)

let test_bitwidth_loop_widens () =
  let f = loop_func () in
  let bw = Bitwidth.analyze f in
  (* x grows in the loop; widening must terminate the analysis and x's
     interval must cover [0, 10] at the very least. *)
  match Bitwidth.interval_out bw (lbl "body") (var "x") with
  | Bitwidth.Interval.Range (lo, hi) ->
    (* At the body exit x was just incremented, so lo is 1. *)
    Alcotest.(check bool) "covers 1" true (lo <= 1);
    Alcotest.(check bool) "covers growth" true (hi >= 10)
  | Bitwidth.Interval.Bot -> Alcotest.fail "x has no interval"

let test_interval_ops () =
  let open Bitwidth.Interval in
  Alcotest.(check bool) "join" true
    (equal (Range (1, 5)) (join (Range (1, 3)) (Range (2, 5))));
  Alcotest.(check bool) "join bot" true (equal (Range (1, 1)) (join Bot (of_const 1)));
  Alcotest.(check int) "bitwidth of [0,255]" 8 (bitwidth (Range (0, 255)));
  Alcotest.(check int) "bitwidth of [-128,127]" 8 (bitwidth (Range (-128, 127)));
  Alcotest.(check int) "bitwidth of bot" 0 (bitwidth Bot);
  Alcotest.(check int) "bitwidth of top" 64 (bitwidth top)

(* --- Dominators ---------------------------------------------------------- *)

let test_dominators_loop () =
  let f = loop_func () in
  let dom = Dominators.analyze f in
  Alcotest.(check bool) "entry dominates all" true
    (List.for_all (fun l -> Dominators.dominates dom (lbl "entry") l) (Func.labels f));
  Alcotest.(check bool) "header dominates body" true
    (Dominators.dominates dom (lbl "header") (lbl "body"));
  Alcotest.(check bool) "body does not dominate header" false
    (Dominators.dominates dom (lbl "body") (lbl "header"));
  Alcotest.(check (option string)) "idom of body" (Some "header")
    (Option.map Label.to_string (Dominators.idom dom (lbl "body")));
  Alcotest.(check (option string)) "idom of entry" None
    (Option.map Label.to_string (Dominators.idom dom (lbl "entry")))

let test_dominators_diamond_join () =
  let f =
    Func.make ~name:"d" ~params:[ var "p" ]
      [
        Block.make (lbl "entry") [] (Block.Branch (var "p", lbl "a", lbl "b"));
        Block.make (lbl "a") [] (Block.Jump (lbl "j"));
        Block.make (lbl "b") [] (Block.Jump (lbl "j"));
        Block.make (lbl "j") [] (Block.Return None);
      ]
  in
  let dom = Dominators.analyze f in
  Alcotest.(check (option string)) "idom of join skips branches" (Some "entry")
    (Option.map Label.to_string (Dominators.idom dom (lbl "j")));
  Alcotest.(check bool) "a does not dominate join" false
    (Dominators.dominates dom (lbl "a") (lbl "j"))

(* --- Loops ----------------------------------------------------------------- *)

let test_loops_detects_natural_loop () =
  let f = loop_func () in
  let loops = Loops.analyze f in
  Alcotest.(check int) "one loop" 1 (List.length (Loops.loops loops));
  match Loops.loops loops with
  | [ l ] ->
    Alcotest.(check string) "header" "header" (Label.to_string l.Loops.header);
    Alcotest.(check bool) "body contains body block" true
      (Label.Set.mem (lbl "body") l.Loops.body);
    Alcotest.(check bool) "body excludes exit" false
      (Label.Set.mem (lbl "exit") l.Loops.body)
  | _ -> Alcotest.fail "expected one loop"

let test_loops_trip_count_exact () =
  let f = loop_func () in
  let loops = Loops.analyze f in
  Alcotest.(check int) "trip count 10" 10 (Loops.trip_count loops (lbl "header"))

let test_loops_depth_and_frequency () =
  let f = Tdfa_workload.Kernels.matmul ~n:4 () in
  let loops = Loops.analyze f in
  let depths =
    List.map (fun l -> Loops.depth loops l) (Func.labels f)
  in
  Alcotest.(check int) "max depth 3" 3 (List.fold_left max 0 depths);
  (* The innermost body executes 4^3 times. *)
  let innermost =
    List.fold_left
      (fun acc l -> Float.max acc (Loops.frequency loops l))
      0.0 (Func.labels f)
  in
  Alcotest.(check (float 1.0)) "inner frequency 64" 64.0 innermost

let test_loops_counted_loop_trips () =
  (* The kernel scaffold must be recognised for various counts. *)
  List.iter
    (fun count ->
      let b = Builder.create ~name:"t" ~params:[] in
      let (_ : Var.t) =
        Tdfa_workload.Kernels.counted_loop b ~count (fun _ -> Builder.nop b)
      in
      Builder.ret b None;
      let f = Builder.finish b in
      let loops = Loops.analyze f in
      match Loops.loops loops with
      | [ l ] ->
        Alcotest.(check int)
          (Printf.sprintf "trip %d" count)
          count
          (Loops.trip_count loops l.Loops.header)
      | _ -> Alcotest.fail "expected exactly one loop")
    [ 1; 2; 7; 100 ]

let test_loops_none_in_straight_line () =
  let loops = Loops.analyze (straight_line ()) in
  Alcotest.(check int) "no loops" 0 (List.length (Loops.loops loops));
  Alcotest.(check (float 0.001)) "frequency 1" 1.0
    (Loops.frequency loops (lbl "entry"))

(* --- Constant propagation -------------------------------------------------- *)

let test_const_prop_straight_line () =
  let f = straight_line () in
  let cp = Const_prop.analyze f in
  Alcotest.(check bool) "k constant" true
    (Const_prop.Value.equal (Const_prop.Value.Const 3)
       (Const_prop.value_out cp (lbl "entry") (var "k")));
  (* b = a + k with a a parameter: varying. *)
  Alcotest.(check bool) "b varying" true
    (Const_prop.Value.equal Const_prop.Value.Varying
       (Const_prop.value_out cp (lbl "entry") (var "b")))

let test_const_prop_folds_chain () =
  let f =
    Func.make ~name:"chain" ~params:[]
      [
        Block.make (lbl "entry")
          [
            Instr.Const (var "a", 6);
            Instr.Const (var "b", 7);
            Instr.Binop (Instr.Mul, var "c", var "a", var "b");
            Instr.Unop (Instr.Neg, var "d", var "c");
          ]
          (Block.Return (Some (var "d")));
      ]
  in
  let cp = Const_prop.analyze f in
  Alcotest.(check bool) "c = 42" true
    (Const_prop.Value.equal (Const_prop.Value.Const 42)
       (Const_prop.value_out cp (lbl "entry") (var "c")));
  Alcotest.(check bool) "d = -42" true
    (Const_prop.Value.equal (Const_prop.Value.Const (-42))
       (Const_prop.value_out cp (lbl "entry") (var "d")))

let test_const_prop_loop_variable_varying () =
  let f = loop_func () in
  let cp = Const_prop.analyze f in
  Alcotest.(check bool) "x varying in header" true
    (Const_prop.Value.equal Const_prop.Value.Varying
       (Const_prop.value_in cp (lbl "header") (var "x")));
  Alcotest.(check bool) "n stays constant" true
    (Const_prop.Value.equal (Const_prop.Value.Const 10)
       (Const_prop.value_in cp (lbl "header") (var "n")))

let test_const_prop_diamond_agreement () =
  (* The same constant on both branches survives the join; different
     constants do not. *)
  let f =
    Func.make ~name:"d" ~params:[ var "p" ]
      [
        Block.make (lbl "entry") [] (Block.Branch (var "p", lbl "a", lbl "b"));
        Block.make (lbl "a")
          [ Instr.Const (var "s", 5); Instr.Const (var "t", 1) ]
          (Block.Jump (lbl "j"));
        Block.make (lbl "b")
          [ Instr.Const (var "s", 5); Instr.Const (var "t", 2) ]
          (Block.Jump (lbl "j"));
        Block.make (lbl "j") [] (Block.Return (Some (var "s")));
      ]
  in
  let cp = Const_prop.analyze f in
  Alcotest.(check bool) "agreeing constant" true
    (Const_prop.Value.equal (Const_prop.Value.Const 5)
       (Const_prop.value_in cp (lbl "j") (var "s")));
  Alcotest.(check bool) "conflicting constant" true
    (Const_prop.Value.equal Const_prop.Value.Varying
       (Const_prop.value_in cp (lbl "j") (var "t")))

let test_value_join () =
  let open Const_prop.Value in
  Alcotest.(check bool) "unknown join" true (equal (Const 1) (join Unknown (Const 1)));
  Alcotest.(check bool) "same consts" true (equal (Const 2) (join (Const 2) (Const 2)));
  Alcotest.(check bool) "diff consts" true (equal Varying (join (Const 1) (Const 2)));
  Alcotest.(check bool) "varying wins" true (equal Varying (join Varying (Const 1)))

(* --- Use/def ------------------------------------------------------------- *)

let test_use_def_counts () =
  let f = loop_func () in
  let ud = Use_def.build f in
  Alcotest.(check int) "x defined twice" 2 (List.length (Use_def.defs ud (var "x")));
  (* x used by: slt (header), add (body), ret (exit terminator). *)
  Alcotest.(check int) "x used three times" 3 (Use_def.static_use_count ud (var "x"));
  Alcotest.(check int) "n defined once" 1 (List.length (Use_def.defs ud (var "n")))

let test_use_def_weighted () =
  let f = loop_func () in
  let ud = Use_def.build f in
  let loops = Loops.analyze f in
  let wx = Use_def.weighted_access_count ud loops (var "x") in
  let wn = Use_def.weighted_access_count ud loops (var "n") in
  Alcotest.(check bool) "loop variable outweighs loop bound" true (wx > wn)

let test_available_exprs_loop_invariant () =
  (* An expression over loop-invariant operands computed before the loop
     is available inside it. *)
  let f =
    Func.make ~name:"li" ~params:[ var "a"; var "b" ]
      [
        Block.make (lbl "entry")
          [
            Instr.Binop (Instr.Mul, var "p", var "a", var "b");
            Instr.Const (var "i", 0);
            Instr.Const (var "n", 4);
            Instr.Const (var "one", 1);
          ]
          (Block.Jump (lbl "header"));
        Block.make (lbl "header")
          [ Instr.Binop (Instr.Slt, var "c", var "i", var "n") ]
          (Block.Branch (var "c", lbl "body", lbl "exit"));
        Block.make (lbl "body")
          [ Instr.Binop (Instr.Add, var "i", var "i", var "one") ]
          (Block.Jump (lbl "header"));
        Block.make (lbl "exit") [] (Block.Return (Some (var "p")));
      ]
  in
  let av = Available_exprs.analyze f in
  Alcotest.(check bool) "a*b available in the loop body" true
    (Available_exprs.Expr_set.mem
       (Instr.Mul, var "a", var "b")
       (Available_exprs.available_in av (lbl "body")))

let test_dominators_nested_loops () =
  let f = Tdfa_workload.Kernels.matmul ~n:2 () in
  let dom = Dominators.analyze f in
  (* Every block's immediate dominator (when present) strictly dominates
     it, and dominance is transitive down the idom chain. *)
  List.iter
    (fun l ->
      match Dominators.idom dom l with
      | None ->
        Alcotest.(check string) "only entry has no idom" "entry"
          (Label.to_string l)
      | Some d ->
        Alcotest.(check bool) "idom dominates" true (Dominators.dominates dom d l);
        Alcotest.(check bool) "not self" false (Label.equal d l))
    (Func.labels f)

let test_liveness_on_multiproc_functions () =
  (* Each function of a program is analysed independently; parameters are
     live on entry when used. *)
  let p = Tdfa_workload.Kernels.multiproc_program () in
  List.iter
    (fun (f : Func.t) ->
      let live = Liveness.analyze f in
      Func.iter_instrs
        (fun l i instr ->
          List.iter
            (fun u ->
              if not (Var.Set.mem u (Liveness.live_before_instr live l i)) then
                Alcotest.failf "%s: use not live" (Var.to_string u))
            (Instr.uses instr))
        f)
    (Tdfa_ir.Program.funcs p)

let test_loops_nested_bodies_nest () =
  let f = Tdfa_workload.Kernels.matmul () in
  let loops = Loops.analyze f in
  let all = Loops.loops loops in
  Alcotest.(check int) "three loops" 3 (List.length all);
  (* Sorted by body size, each smaller body is contained in the next. *)
  let sorted =
    List.sort
      (fun a b ->
        Int.compare
          (Label.Set.cardinal a.Loops.body)
          (Label.Set.cardinal b.Loops.body))
      all
  in
  let rec nested = function
    | a :: (b :: _ as rest) ->
      Label.Set.subset a.Loops.body b.Loops.body && nested rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "loops nest" true (nested sorted)

let test_const_value_through_moves () =
  (* Trip recovery sees through the copies a splitting pass inserts. *)
  let f =
    Func.make ~name:"mv" ~params:[]
      [
        Block.make (lbl "entry")
          [
            Instr.Const (var "i", 0);
            Instr.Const (var "n", 6);
            Instr.Const (var "one", 1);
          ]
          (Block.Jump (lbl "header"));
        Block.make (lbl "header")
          [ Instr.Binop (Instr.Slt, var "c", var "i", var "n") ]
          (Block.Branch (var "c", lbl "body", lbl "exit"));
        Block.make (lbl "body")
          [
            Instr.Unop (Instr.Mov, var "one_copy", var "one");
            Instr.Binop (Instr.Add, var "i", var "i", var "one_copy");
          ]
          (Block.Jump (lbl "header"));
        Block.make (lbl "exit") [] (Block.Return None);
      ]
  in
  let loops = Loops.analyze f in
  Alcotest.(check (option int)) "trip recovered through the move" (Some 6)
    (Loops.exact_trip_count loops (lbl "header"))

(* --- Generic solver ---------------------------------------------------------- *)

let test_solver_iterations_bounded () =
  (* The liveness fixpoint on every kernel stabilises in a few passes. *)
  List.iter
    (fun (name, f) ->
      let live = Liveness.analyze f in
      if Liveness.iterations live > 20 then
        Alcotest.failf "%s took %d iterations" name (Liveness.iterations live))
    Tdfa_workload.Kernels.all

let suite =
  let tc = Alcotest.test_case in
  [
    ( "dataflow.liveness",
      [
        tc "loop live sets" `Quick test_liveness_loop;
        tc "per-instruction" `Quick test_liveness_per_instr;
        tc "max pressure" `Quick test_liveness_pressure;
        tc "dead def" `Quick test_liveness_dead_def;
        tc "uses live before (all kernels)" `Quick test_liveness_uses_live_before;
        tc "multiproc functions" `Quick test_liveness_on_multiproc_functions;
        tc "fixpoint terminates fast" `Quick test_solver_iterations_bounded;
      ] );
    ( "dataflow.reaching-defs",
      [
        tc "loop defs merge" `Quick test_reaching_defs_loop;
        tc "redefinition kills" `Quick test_reaching_defs_kill;
      ] );
    ( "dataflow.available-exprs",
      [
        tc "diamond intersection" `Quick test_available_exprs_diamond;
        tc "killed by operand redef" `Quick test_available_exprs_killed_by_redef;
        tc "loop invariant" `Quick test_available_exprs_loop_invariant;
      ] );
    ( "dataflow.bitwidth",
      [
        tc "constants" `Quick test_bitwidth_constants;
        tc "comparison is 1 bit" `Quick test_bitwidth_comparison_is_bool;
        tc "loop widens" `Quick test_bitwidth_loop_widens;
        tc "interval ops" `Quick test_interval_ops;
      ] );
    ( "dataflow.dominators",
      [
        tc "loop dominators" `Quick test_dominators_loop;
        tc "diamond idom" `Quick test_dominators_diamond_join;
        tc "nested loops" `Quick test_dominators_nested_loops;
      ] );
    ( "dataflow.loops",
      [
        tc "natural loop" `Quick test_loops_detects_natural_loop;
        tc "exact trip count" `Quick test_loops_trip_count_exact;
        tc "depth and frequency" `Quick test_loops_depth_and_frequency;
        tc "counted_loop trips" `Quick test_loops_counted_loop_trips;
        tc "straight line" `Quick test_loops_none_in_straight_line;
        tc "nesting" `Quick test_loops_nested_bodies_nest;
        tc "const through moves" `Quick test_const_value_through_moves;
      ] );
    ( "dataflow.const-prop",
      [
        tc "straight line" `Quick test_const_prop_straight_line;
        tc "folds chain" `Quick test_const_prop_folds_chain;
        tc "loop variable varying" `Quick test_const_prop_loop_variable_varying;
        tc "diamond agreement" `Quick test_const_prop_diamond_agreement;
        tc "value join" `Quick test_value_join;
      ] );
    ( "dataflow.use-def",
      [
        tc "counts" `Quick test_use_def_counts;
        tc "loop weighting" `Quick test_use_def_weighted;
      ] );
  ]
