(* Tests of the IR substrate: variables, instructions, blocks, CFG
   queries, the builder, the printer/parser round trip and the
   validator. *)

open Tdfa_ir

let var = Var.of_string
let lbl = Label.of_string

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else go (i + 1)
  in
  go 0

let check_vars = Alcotest.(check (list string))
let vars_to_strings vs = List.map Var.to_string vs

(* --- Var / Label ---------------------------------------------------- *)

let test_var_basics () =
  Alcotest.(check string) "roundtrip" "x" (Var.to_string (var "x"));
  Alcotest.(check bool) "equal" true (Var.equal (var "x") (var "x"));
  Alcotest.(check bool) "not equal" false (Var.equal (var "x") (var "y"));
  Alcotest.(check int) "compare sign" 0 (Var.compare (var "a") (var "a"));
  Alcotest.(check bool) "set" true
    (Var.Set.mem (var "b") (Var.Set.of_list [ var "a"; var "b" ]))

let test_var_pp () =
  Alcotest.(check string) "pp prefixes %" "%foo"
    (Format.asprintf "%a" Var.pp (var "foo"))

let test_label_basics () =
  Alcotest.(check string) "roundtrip" "entry" (Label.to_string (lbl "entry"));
  Alcotest.(check string) "pp bare" "entry"
    (Format.asprintf "%a" Label.pp (lbl "entry"))

(* --- Instr ----------------------------------------------------------- *)

let test_instr_def_uses () =
  let i = Instr.Binop (Instr.Add, var "d", var "a", var "b") in
  Alcotest.(check (option string)) "def" (Some "d")
    (Option.map Var.to_string (Instr.def i));
  check_vars "uses" [ "a"; "b" ] (vars_to_strings (Instr.uses i));
  check_vars "accessed = uses then def" [ "a"; "b"; "d" ]
    (vars_to_strings (Instr.accessed i))

let test_instr_store_no_def () =
  let i = Instr.Store (var "v", var "base", 4) in
  Alcotest.(check (option string)) "no def" None
    (Option.map Var.to_string (Instr.def i));
  check_vars "uses value then base" [ "v"; "base" ]
    (vars_to_strings (Instr.uses i))

let test_instr_duplicate_uses_preserved () =
  let i = Instr.Binop (Instr.Mul, var "d", var "a", var "a") in
  check_vars "a read twice" [ "a"; "a" ] (vars_to_strings (Instr.uses i))

let test_instr_call () =
  let i = Instr.Call (Some (var "r"), "f", [ var "x"; var "y" ]) in
  Alcotest.(check (option string)) "def" (Some "r")
    (Option.map Var.to_string (Instr.def i));
  check_vars "args" [ "x"; "y" ] (vars_to_strings (Instr.uses i));
  let i2 = Instr.Call (None, "g", []) in
  Alcotest.(check (option string)) "void call" None
    (Option.map Var.to_string (Instr.def i2))

let test_instr_map_uses_keeps_def () =
  let i = Instr.Binop (Instr.Add, var "d", var "a", var "b") in
  let j = Instr.map_uses (fun _ -> var "z") i in
  Alcotest.(check (option string)) "def kept" (Some "d")
    (Option.map Var.to_string (Instr.def j));
  check_vars "uses renamed" [ "z"; "z" ] (vars_to_strings (Instr.uses j))

let test_instr_map_def_keeps_uses () =
  let i = Instr.Load (var "d", var "base", 8) in
  let j = Instr.map_def (fun _ -> var "q") i in
  Alcotest.(check (option string)) "def renamed" (Some "q")
    (Option.map Var.to_string (Instr.def j));
  check_vars "uses kept" [ "base" ] (vars_to_strings (Instr.uses j))

let test_eval_binop () =
  let open Instr in
  Alcotest.(check int) "add" 7 (eval_binop Add 3 4);
  Alcotest.(check int) "sub" (-1) (eval_binop Sub 3 4);
  Alcotest.(check int) "mul" 12 (eval_binop Mul 3 4);
  Alcotest.(check int) "div" 2 (eval_binop Div 9 4);
  Alcotest.(check int) "div by zero is total" 0 (eval_binop Div 9 0);
  Alcotest.(check int) "rem by zero is total" 0 (eval_binop Rem 9 0);
  Alcotest.(check int) "slt true" 1 (eval_binop Slt 1 2);
  Alcotest.(check int) "slt false" 0 (eval_binop Slt 2 1);
  Alcotest.(check int) "seq" 1 (eval_binop Seq 5 5);
  Alcotest.(check int) "xor" 6 (eval_binop Xor 5 3);
  Alcotest.(check int) "shl" 16 (eval_binop Shl 1 4)

let test_eval_unop () =
  let open Instr in
  Alcotest.(check int) "neg" (-5) (eval_unop Neg 5);
  Alcotest.(check int) "not" (-1) (eval_unop Not 0);
  Alcotest.(check int) "mov" 42 (eval_unop Mov 42)

let test_binop_names_roundtrip () =
  let open Instr in
  List.iter
    (fun op ->
      match binop_of_string (string_of_binop op) with
      | Some op' -> Alcotest.(check bool) "binop name roundtrip" true (op = op')
      | None -> Alcotest.fail "binop name did not parse back")
    [ Add; Sub; Mul; Div; Rem; And; Or; Xor; Shl; Shr; Slt; Sle; Seq; Sne ]

let test_instr_to_string () =
  Alcotest.(check string) "const" "%d = const 5"
    (Instr.to_string (Instr.Const (var "d", 5)));
  Alcotest.(check string) "store" "store %v, %b, 4"
    (Instr.to_string (Instr.Store (var "v", var "b", 4)));
  Alcotest.(check string) "nop" "nop" (Instr.to_string Instr.Nop)

(* --- Block / Func ----------------------------------------------------- *)

let diamond () =
  (* entry -> (a | b) -> join *)
  Func.make ~name:"diamond" ~params:[ var "p" ]
    [
      Block.make (lbl "entry")
        [ Instr.Const (var "c", 1) ]
        (Block.Branch (var "p", lbl "a", lbl "b"));
      Block.make (lbl "a")
        [ Instr.Binop (Instr.Add, var "x", var "c", var "p") ]
        (Block.Jump (lbl "join"));
      Block.make (lbl "b")
        [ Instr.Binop (Instr.Sub, var "x", var "c", var "p") ]
        (Block.Jump (lbl "join"));
      Block.make (lbl "join") [] (Block.Return (Some (var "x")));
    ]

let test_block_successors () =
  Alcotest.(check (list string)) "jump" [ "x" ]
    (List.map Label.to_string (Block.successors (Block.Jump (lbl "x"))));
  Alcotest.(check (list string)) "branch" [ "t"; "f" ]
    (List.map Label.to_string
       (Block.successors (Block.Branch (var "c", lbl "t", lbl "f"))));
  Alcotest.(check (list string)) "return" []
    (List.map Label.to_string (Block.successors (Block.Return None)))

let test_func_duplicate_labels_rejected () =
  Alcotest.check_raises "duplicate labels"
    (Invalid_argument "Func.make: duplicate label a")
    (fun () ->
      ignore
        (Func.make ~name:"bad" ~params:[]
           [
             Block.make (lbl "a") [] (Block.Return None);
             Block.make (lbl "a") [] (Block.Return None);
           ]))

let test_func_empty_rejected () =
  Alcotest.check_raises "no blocks" (Invalid_argument "Func.make: no blocks")
    (fun () -> ignore (Func.make ~name:"bad" ~params:[] []))

let test_func_cfg_queries () =
  let f = diamond () in
  Alcotest.(check string) "entry" "entry" (Label.to_string (Func.entry_label f));
  Alcotest.(check (list string)) "succs of entry" [ "a"; "b" ]
    (List.map Label.to_string (Func.successors f (lbl "entry")));
  Alcotest.(check (list string)) "preds of join" [ "a"; "b" ]
    (List.map Label.to_string (Func.predecessors f (lbl "join")));
  Alcotest.(check int) "instr count" 3 (Func.instr_count f)

let test_func_reverse_postorder () =
  let f = diamond () in
  let rpo = List.map Label.to_string (Func.reverse_postorder f) in
  (* entry first, join last; a and b in between. *)
  (match rpo with
   | "entry" :: rest ->
     Alcotest.(check string) "join last" "join"
       (List.nth rest (List.length rest - 1))
   | _ -> Alcotest.fail "entry not first in RPO");
  Alcotest.(check int) "all blocks" 4 (List.length rpo)

let test_func_reachable_excludes_orphan () =
  let f =
    Func.make ~name:"orphan" ~params:[]
      [
        Block.make (lbl "entry") [] (Block.Return None);
        Block.make (lbl "dead") [] (Block.Return None);
      ]
  in
  Alcotest.(check bool) "dead not reachable" false
    (Label.Set.mem (lbl "dead") (Func.reachable f))

let test_func_defined_and_all_vars () =
  let f = diamond () in
  let defined = vars_to_strings (Var.Set.elements (Func.defined_vars f)) in
  Alcotest.(check (list string)) "defined (sorted)" [ "c"; "p"; "x" ] defined;
  let all = vars_to_strings (Var.Set.elements (Func.all_vars f)) in
  Alcotest.(check (list string)) "all vars" [ "c"; "p"; "x" ] all

let test_replace_block () =
  let f = diamond () in
  let b = Func.find_block f (lbl "join") in
  let b' = Block.with_body b [ Instr.Nop ] in
  let f' = Func.replace_block f b' in
  Alcotest.(check int) "one more instr" 4 (Func.instr_count f')

(* --- Builder ---------------------------------------------------------- *)

let test_builder_basic () =
  let b = Builder.create ~name:"f" ~params:[ "a" ] in
  let a = Builder.param b 0 in
  let two = Builder.const b 2 in
  let r = Builder.binop b Instr.Mul a two in
  Builder.ret b (Some r);
  let f = Builder.finish b in
  Alcotest.(check int) "two instrs" 2 (Func.instr_count f);
  Alcotest.(check string) "name" "f" f.Func.name;
  match Validate.check f with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_builder_fresh_names_distinct () =
  let b = Builder.create ~name:"f" ~params:[] in
  let v1 = Builder.fresh_var b "t" in
  let v2 = Builder.fresh_var b "t" in
  Alcotest.(check bool) "distinct" false (Var.equal v1 v2)

let test_builder_open_block_rejected () =
  let b = Builder.create ~name:"f" ~params:[] in
  Alcotest.(check bool) "finish with open block raises" true
    (match Builder.finish b with
     | (_ : Func.t) -> false
     | exception Invalid_argument _ -> true)

let test_builder_emit_after_close_rejected () =
  let b = Builder.create ~name:"f" ~params:[] in
  Builder.ret b None;
  Alcotest.(check bool) "emit without block raises" true
    (match Builder.nop b with
     | () -> false
     | exception Invalid_argument _ -> true)

let test_builder_param_out_of_range () =
  let b = Builder.create ~name:"f" ~params:[ "x" ] in
  Alcotest.(check bool) "param 3 raises" true
    (match Builder.param b 3 with
     | (_ : Var.t) -> false
     | exception Invalid_argument _ -> true)

(* --- Printer / Parser -------------------------------------------------- *)

let test_roundtrip_diamond () =
  let f = diamond () in
  let s = Printer.func_to_string f in
  let f' = Parser.parse_func s in
  Alcotest.(check string) "print-parse-print fixpoint" s
    (Printer.func_to_string f')

let test_roundtrip_all_kernels () =
  List.iter
    (fun (name, f) ->
      let s = Printer.func_to_string f in
      let f' = Parser.parse_func s in
      Alcotest.(check string) (name ^ " roundtrip") s (Printer.func_to_string f'))
    Tdfa_workload.Kernels.all

let test_parser_comments_and_negatives () =
  let src =
    "# a comment\n\
     func @f() {\n\
     entry:  # trailing comment\n\
     %x = const -7\n\
     ret %x\n\
     }\n"
  in
  let f = Parser.parse_func src in
  Alcotest.(check int) "one instr" 1 (Func.instr_count f)

let test_parser_errors () =
  let expect_error src =
    match Parser.parse_func src with
    | (_ : Func.t) -> Alcotest.fail "expected parse error"
    | exception Parser.Error _ -> ()
  in
  expect_error "func @f() { entry: ret";
  expect_error "func @f() { entry: %x = bogus %y ret }";
  expect_error "func f() { entry: ret }";
  expect_error "";
  expect_error "func @f() { entry: %x = const 1 }"

let test_parser_program_multifunc () =
  let src = "func @a() {\nentry:\n  ret\n}\nfunc @b() {\nentry:\n  ret\n}\n" in
  let p = Parser.parse_program src in
  Alcotest.(check int) "two functions" 2 (List.length (Program.funcs p))

let test_program_lookup () =
  let f = diamond () in
  let p = Program.of_funcs [ f ] in
  Alcotest.(check bool) "find" true (Program.find p "diamond" <> None);
  Alcotest.(check bool) "missing" true (Program.find p "nope" = None);
  Alcotest.(check string) "main falls back to first" "diamond"
    (Program.main p).Func.name

(* --- Validate ---------------------------------------------------------- *)

let test_validate_ok () =
  match Validate.check (diamond ()) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_validate_missing_target () =
  let f =
    Func.make ~name:"bad" ~params:[]
      [ Block.make (lbl "entry") [] (Block.Jump (lbl "nowhere")) ]
  in
  Alcotest.(check bool) "error reported" true (Validate.errors f <> [])

let test_validate_undefined_var () =
  let f =
    Func.make ~name:"bad" ~params:[]
      [
        Block.make (lbl "entry")
          [ Instr.Unop (Instr.Mov, var "x", var "ghost") ]
          (Block.Return None);
      ]
  in
  Alcotest.(check bool) "undefined use reported" true
    (List.exists (fun e -> contains e "ghost") (Validate.errors f))

(* --- QCheck properties -------------------------------------------------- *)

let arb_binop =
  QCheck2.Gen.oneofl
    Instr.[ Add; Sub; Mul; Div; Rem; And; Or; Xor; Shl; Shr; Slt; Sle; Seq; Sne ]

let qcheck_eval_total =
  QCheck2.Test.make ~name:"eval_binop is total" ~count:500
    QCheck2.Gen.(triple arb_binop (int_range (-10000) 10000) (int_range (-10000) 10000))
    (fun (op, a, b) ->
      let (_ : int) = Instr.eval_binop op a b in
      true)

let qcheck_map_vars_id =
  QCheck2.Test.make ~name:"map_vars Fun.id is identity" ~count:200
    QCheck2.Gen.(
      let gv = map (fun c -> Var.of_string (String.make 1 c)) (char_range 'a' 'z') in
      oneof
        [
          map (fun (v, k) -> Instr.Const (v, k)) (pair gv small_int);
          map (fun (d, s) -> Instr.Unop (Instr.Mov, d, s)) (pair gv gv);
          map
            (fun (d, (a, b)) -> Instr.Binop (Instr.Add, d, a, b))
            (pair gv (pair gv gv));
          map (fun (v, b) -> Instr.Store (v, b, 0)) (pair gv gv);
        ])
    (fun i -> Instr.equal i (Instr.map_vars Fun.id i))

let suite =
  let tc = Alcotest.test_case in
  [
    ( "ir.var-label",
      [
        tc "var basics" `Quick test_var_basics;
        tc "var pp" `Quick test_var_pp;
        tc "label basics" `Quick test_label_basics;
      ] );
    ( "ir.instr",
      [
        tc "def/uses binop" `Quick test_instr_def_uses;
        tc "store has no def" `Quick test_instr_store_no_def;
        tc "duplicate uses preserved" `Quick test_instr_duplicate_uses_preserved;
        tc "call" `Quick test_instr_call;
        tc "map_uses keeps def" `Quick test_instr_map_uses_keeps_def;
        tc "map_def keeps uses" `Quick test_instr_map_def_keeps_uses;
        tc "eval_binop" `Quick test_eval_binop;
        tc "eval_unop" `Quick test_eval_unop;
        tc "binop names roundtrip" `Quick test_binop_names_roundtrip;
        tc "to_string" `Quick test_instr_to_string;
        QCheck_alcotest.to_alcotest qcheck_eval_total;
        QCheck_alcotest.to_alcotest qcheck_map_vars_id;
      ] );
    ( "ir.func",
      [
        tc "block successors" `Quick test_block_successors;
        tc "duplicate labels rejected" `Quick test_func_duplicate_labels_rejected;
        tc "empty rejected" `Quick test_func_empty_rejected;
        tc "cfg queries" `Quick test_func_cfg_queries;
        tc "reverse postorder" `Quick test_func_reverse_postorder;
        tc "reachability" `Quick test_func_reachable_excludes_orphan;
        tc "defined/all vars" `Quick test_func_defined_and_all_vars;
        tc "replace block" `Quick test_replace_block;
      ] );
    ( "ir.builder",
      [
        tc "basic" `Quick test_builder_basic;
        tc "fresh names distinct" `Quick test_builder_fresh_names_distinct;
        tc "open block rejected" `Quick test_builder_open_block_rejected;
        tc "emit after close rejected" `Quick test_builder_emit_after_close_rejected;
        tc "param out of range" `Quick test_builder_param_out_of_range;
      ] );
    ( "ir.parser",
      [
        tc "diamond roundtrip" `Quick test_roundtrip_diamond;
        tc "all kernels roundtrip" `Quick test_roundtrip_all_kernels;
        tc "comments and negatives" `Quick test_parser_comments_and_negatives;
        tc "parse errors" `Quick test_parser_errors;
        tc "multi-function program" `Quick test_parser_program_multifunc;
        tc "program lookup" `Quick test_program_lookup;
      ] );
    ( "ir.validate",
      [
        tc "well-formed accepted" `Quick test_validate_ok;
        tc "missing target" `Quick test_validate_missing_target;
        tc "undefined var" `Quick test_validate_undefined_var;
      ] );
  ]
