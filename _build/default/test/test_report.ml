(* Tests of the report tables. *)

open Tdfa_report

let test_table_alignment () =
  let t = Table.create ~headers:[ "a"; "long-header" ] in
  Table.add_row t [ "xxxxxx"; "1" ];
  Table.add_row t [ "y"; "2" ];
  let s = Table.to_string t in
  let lines = String.split_on_char '\n' s in
  match lines with
  | header :: rule :: row1 :: row2 :: _ ->
    Alcotest.(check int) "rows same width" (String.length row1) (String.length row2);
    Alcotest.(check int) "rule matches header" (String.length header)
      (String.length rule)
  | _ -> Alcotest.fail "unexpected table shape"

let test_table_arity_mismatch () =
  let t = Table.create ~headers:[ "a"; "b" ] in
  Alcotest.(check bool) "arity checked" true
    (match Table.add_row t [ "only-one" ] with
     | () -> false
     | exception Invalid_argument _ -> true)

let test_table_csv () =
  let t = Table.create ~headers:[ "name"; "value" ] in
  Table.add_row t [ "x"; "1" ];
  Table.add_row t [ "with,comma"; "2" ];
  Alcotest.(check string) "csv" "name,value\nx,1\n\"with,comma\",2\n" (Table.csv t)

let test_formatters () =
  Alcotest.(check string) "fk" "321.46" (Table.fk 321.456);
  Alcotest.(check string) "f3" "0.124" (Table.f3 0.1239);
  Alcotest.(check string) "pct" "12.5%" (Table.pct 12.49)

let suite =
  let tc = Alcotest.test_case in
  [
    ( "report.table",
      [
        tc "alignment" `Quick test_table_alignment;
        tc "arity mismatch" `Quick test_table_arity_mismatch;
        tc "csv" `Quick test_table_csv;
        tc "formatters" `Quick test_formatters;
      ] );
  ]
