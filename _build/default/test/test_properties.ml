(* Cross-cutting property-based tests (QCheck): randomized programs flow
   through the whole pipeline and the key invariants hold — spilling and
   scheduling preserve semantics, allocations are valid for random
   pressure, the thermal solver satisfies its equations, and the metric
   helpers obey their algebra. *)

open Tdfa_ir
open Tdfa_dataflow
open Tdfa_floorplan
open Tdfa_regalloc
open Tdfa_workload

let layout = Layout.make ~rows:8 ~cols:8 ()

let gen_program =
  QCheck2.Gen.(
    map
      (fun (seed, pool, depth) ->
        Generator.generate
          { Generator.default with Generator.seed; pool; depth })
      (triple (int_range 1 10_000) (int_range 2 20) (int_range 0 2)))

let observe f =
  let o = Tdfa_exec.Interp.run_func ~fuel:5_000_000 f in
  ( o.Tdfa_exec.Interp.return_value,
    List.filter (fun (a, _) -> a < Spill.base_address) o.Tdfa_exec.Interp.memory )

(* --- Whole-pipeline properties on random programs ------------------------- *)

let prop_generated_programs_valid =
  QCheck2.Test.make ~name:"generated programs validate" ~count:60 gen_program
    (fun f -> Validate.errors f = [])

let prop_spill_random_subset_preserves_semantics =
  QCheck2.Test.make ~name:"spilling any subset preserves semantics" ~count:40
    QCheck2.Gen.(pair gen_program (int_range 0 1_000_000))
    (fun (f, mask_seed) ->
      let rng = Random.State.make [| mask_seed |] in
      let candidates =
        Var.Set.elements (Func.defined_vars f)
        |> List.filter (fun v -> not (List.exists (Var.equal v) f.Func.params))
      in
      let chosen =
        List.filter (fun _ -> Random.State.bool rng) candidates
      in
      let f' = Spill.rewrite f (Var.Set.of_list chosen) in
      Validate.errors f' = [] && observe f = observe f')

let prop_allocation_valid_on_random_programs =
  QCheck2.Test.make ~name:"allocation valid on random programs" ~count:30
    gen_program (fun f ->
      let r = Alloc.allocate f layout ~policy:Policy.Thermal_spread in
      let live = Liveness.analyze r.Alloc.func in
      let cell v = Assignment.cell_of_var r.Alloc.assignment v in
      let ok = ref true in
      List.iter
        (fun (b : Block.t) ->
          let l = b.Block.label in
          let check s =
            let cells = List.filter_map cell (Var.Set.elements s) in
            if
              List.length cells
              <> List.length (List.sort_uniq Int.compare cells)
            then ok := false
          in
          check (Liveness.live_in live l);
          Array.iteri
            (fun i _ -> check (Liveness.live_after_instr live l i))
            b.Block.body)
        r.Alloc.func.Func.blocks;
      !ok)

let prop_schedule_preserves_semantics =
  QCheck2.Test.make ~name:"scheduling preserves semantics" ~count:40
    gen_program (fun f ->
      let cell v = Some (Hashtbl.hash (Var.to_string v) mod 64) in
      let f', _ =
        Tdfa_optim.Schedule.apply f ~cell_of_var:cell
          ~is_hot_cell:(fun _ -> false)
      in
      observe f = observe f')

let prop_cleanup_preserves_semantics =
  QCheck2.Test.make ~name:"cleanup passes preserve semantics" ~count:40
    gen_program (fun f -> observe f = observe (Tdfa_optim.Cleanup.run_all f))

let prop_unroll_preserves_semantics =
  QCheck2.Test.make ~name:"unrolling preserves semantics" ~count:30
    QCheck2.Gen.(pair gen_program (oneofl [ 2; 3; 4 ]))
    (fun (f, factor) ->
      let f', _ = Tdfa_optim.Unroll.apply f ~factor in
      observe f = observe f')

let prop_bundles_cover_block =
  QCheck2.Test.make ~name:"VLIW bundles cover each block exactly" ~count:40
    gen_program (fun f ->
      List.for_all
        (fun (b : Block.t) ->
          let bundles = Tdfa_vliw.Bundler.bundles_of_block ~width:4 b in
          let sorted l = List.sort compare l in
          sorted (List.concat bundles) = sorted (Array.to_list b.Block.body))
        f.Func.blocks)

let prop_interference_symmetric =
  QCheck2.Test.make ~name:"interference is symmetric and irreflexive" ~count:30
    gen_program (fun f ->
      let g = Interference.build f (Liveness.analyze f) in
      List.for_all
        (fun v ->
          (not (Interference.interferes g v v))
          && Var.Set.for_all
               (fun w -> Interference.interferes g w v)
               (Interference.neighbors g v))
        (Interference.vars g))

(* --- Thermal solver properties ---------------------------------------------- *)

let gen_power =
  QCheck2.Gen.(
    array_size (return 64) (map (fun x -> x *. 1.0e-3) (float_bound_inclusive 1.0)))

let prop_steady_state_solves_equations =
  QCheck2.Test.make ~name:"steady state satisfies G T = P" ~count:30 gen_power
    (fun power ->
      let model = Tdfa_thermal.Rc_model.build layout Tdfa_thermal.Params.default in
      let temps = Tdfa_thermal.Rc_model.steady_state ~tol:1e-9 model ~power in
      let deriv = Tdfa_thermal.Rc_model.derivative model ~temps ~power in
      Array.for_all (fun d -> Float.abs d < 1.0) deriv)

let prop_steady_state_monotone_in_power =
  QCheck2.Test.make ~name:"more power never cools any cell" ~count:30 gen_power
    (fun power ->
      let model = Tdfa_thermal.Rc_model.build layout Tdfa_thermal.Params.default in
      let t1 = Tdfa_thermal.Rc_model.steady_state model ~power in
      let boosted = Array.map (fun p -> p +. 1.0e-4) power in
      let t2 = Tdfa_thermal.Rc_model.steady_state model ~power:boosted in
      Array.for_all2 (fun a b -> b >= a -. 1e-6) t1 t2)

let prop_metrics_algebra =
  QCheck2.Test.make ~name:"metrics: min <= mean <= peak" ~count:100
    QCheck2.Gen.(
      array_size (return 64)
        (map (fun x -> 300.0 +. (x *. 50.0)) (float_bound_inclusive 1.0)))
    (fun temps ->
      let m = Tdfa_thermal.Metrics.summarize layout temps in
      m.Tdfa_thermal.Metrics.min_k <= m.Tdfa_thermal.Metrics.mean_k +. 1e-9
      && m.Tdfa_thermal.Metrics.mean_k <= m.Tdfa_thermal.Metrics.peak_k +. 1e-9
      && m.Tdfa_thermal.Metrics.range_k >= 0.0)

let prop_spearman_bounds =
  QCheck2.Test.make ~name:"spearman in [-1, 1] and reflexive" ~count:100
    QCheck2.Gen.(array_size (return 32) (float_bound_inclusive 100.0))
    (fun xs ->
      let s = Tdfa_core.Accuracy.spearman xs xs in
      let varying = Array.exists (fun x -> not (Float.equal x xs.(0))) xs in
      (if varying then Float.abs (s -. 1.0) < 1e-9 else Float.equal s 0.0)
      &&
      let ys = Array.map (fun x -> -.x) xs in
      let c = Tdfa_core.Accuracy.spearman xs ys in
      c >= -1.0 -. 1e-9 && c <= 1.0 +. 1e-9)

let prop_thermal_state_roundtrip =
  QCheck2.Test.make ~name:"thermal state cell-array roundtrip (g=1)" ~count:60
    QCheck2.Gen.(array_size (return 64) (float_bound_inclusive 500.0))
    (fun cells ->
      let s = Tdfa_core.Thermal_state.of_cell_array layout ~granularity:1 cells in
      Tdfa_core.Thermal_state.to_cell_array s = cells)

let prop_trace_window_totals =
  QCheck2.Test.make ~name:"windowed trace counts sum to totals" ~count:40
    QCheck2.Gen.(
      pair (int_range 1 200)
        (list_size (int_range 0 300) (pair (int_range 0 999) (int_range 0 63))))
    (fun (window_cycles, raw) ->
      let events =
        List.sort compare raw
        |> List.map (fun (cycle, cell) ->
               {
                 Tdfa_exec.Trace.cycle;
                 var = Var.of_string (Printf.sprintf "v%d" cell);
                 kind =
                   (if cell land 1 = 0 then Tdfa_exec.Trace.Read
                    else Tdfa_exec.Trace.Write);
               })
      in
      let t = Tdfa_exec.Trace.of_events ~cycles:1000 events in
      let cell_of_var v = int_of_string_opt (String.sub (Var.to_string v) 1 (String.length (Var.to_string v) - 1)) in
      let tr, tw =
        Tdfa_exec.Trace.access_counts t ~cell_of_var ~num_cells:64
      in
      let windows =
        Tdfa_exec.Trace.windowed_counts t ~cell_of_var ~num_cells:64
          ~window_cycles
      in
      let sr = Array.make 64 0 and sw = Array.make 64 0 in
      Array.iter
        (fun (r, w) ->
          Array.iteri (fun i x -> sr.(i) <- sr.(i) + x) r;
          Array.iteri (fun i x -> sw.(i) <- sw.(i) + x) w)
        windows;
      sr = tr && sw = tw)

let prop_compile_driver_preserves_semantics =
  QCheck2.Test.make ~name:"full compile driver preserves semantics" ~count:15
    gen_program (fun f ->
      let r = Tdfa_optim.Compile.run ~layout f in
      observe f = observe r.Tdfa_optim.Compile.func)

let prop_random_programs_interprocedurally_analyzable =
  QCheck2.Test.make ~name:"random multi-function programs analyse end-to-end"
    ~count:15
    QCheck2.Gen.(pair (int_range 1 10_000) (int_range 1 3))
    (fun (seed, funcs) ->
      let p =
        Generator.generate_program ~funcs
          { Generator.default with Generator.seed; pool = 6; depth = 1 }
      in
      let g = Tdfa_core.Callgraph.build p in
      (not (Tdfa_core.Callgraph.is_recursive g))
      &&
      let table = Hashtbl.create 4 in
      List.iter
        (fun (f : Func.t) ->
          let a = Alloc.allocate f layout ~policy:Policy.First_fit in
          Hashtbl.replace table f.Func.name a.Alloc.assignment)
        (Program.funcs p);
      let r =
        Tdfa_core.Interproc.run ~layout
          ~assignment_of:(fun (f : Func.t) -> Hashtbl.find table f.Func.name)
          p
      in
      List.for_all
        (fun (_, outcome) -> Tdfa_core.Analysis.converged outcome)
        r.Tdfa_core.Interproc.per_function
      &&
      (* The whole program also executes. *)
      match Tdfa_exec.Interp.run ~fuel:5_000_000 p "main" with
      | (_ : Tdfa_exec.Interp.outcome) -> true
      | exception Tdfa_exec.Interp.Out_of_fuel _ -> false)

let suite =
  [
    ( "properties",
      List.map QCheck_alcotest.to_alcotest
        [
          prop_generated_programs_valid;
          prop_spill_random_subset_preserves_semantics;
          prop_allocation_valid_on_random_programs;
          prop_schedule_preserves_semantics;
          prop_cleanup_preserves_semantics;
          prop_unroll_preserves_semantics;
          prop_bundles_cover_block;
          prop_interference_symmetric;
          prop_steady_state_solves_equations;
          prop_steady_state_monotone_in_power;
          prop_metrics_algebra;
          prop_spearman_bounds;
          prop_thermal_state_roundtrip;
          prop_trace_window_totals;
          prop_compile_driver_preserves_semantics;
          prop_random_programs_interprocedurally_analyzable;
        ] );
  ]
