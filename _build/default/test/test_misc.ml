(* Coverage for corners not exercised elsewhere: fixed-scale heatmaps,
   program printing, window binning edge cases, the static cycle
   estimator, dependence-order checking and allocation under the
   feedback policy. *)

open Tdfa_ir
open Tdfa_floorplan

let layout8 = Layout.make ~rows:8 ~cols:8 ()

let test_heatmap_fixed_scale_clamps () =
  let layout = Layout.make ~rows:2 ~cols:2 () in
  (* Values outside the fixed scale clamp to the ramp ends. *)
  let temps = [| 200.0; 320.0; 330.0; 500.0 |] in
  let s =
    Tdfa_thermal.Heatmap.render_normalized ~lo:320.0 ~hi:330.0 layout temps
  in
  let lines = String.split_on_char '\n' s in
  (match lines with
   | row0 :: row1 :: _ ->
     Alcotest.(check char) "below scale = coldest" '.' row0.[0];
     Alcotest.(check char) "above scale = hottest" '@' row1.[1]
   | _ -> Alcotest.fail "bad shape");
  Alcotest.(check bool) "legend shows the fixed bounds" true
    (List.exists
       (fun l -> l = "min=320.00K max=330.00K")
       lines)

let test_printer_program_roundtrip () =
  let p = Tdfa_workload.Kernels.multiproc_program () in
  let s = Printer.program_to_string p in
  let p' = Parser.parse_program s in
  Alcotest.(check string) "program print/parse fixpoint" s
    (Printer.program_to_string p');
  Alcotest.(check int) "three functions" 3 (List.length (Program.funcs p'))

let test_windowed_counts_empty_trace () =
  let t = Tdfa_exec.Trace.of_events ~cycles:0 [] in
  let windows =
    Tdfa_exec.Trace.windowed_counts t
      ~cell_of_var:(fun _ -> Some 0)
      ~num_cells:4 ~window_cycles:100
  in
  Alcotest.(check int) "one empty window" 1 (Array.length windows)

let test_estimated_program_cycles_tracks_trips () =
  let open Tdfa_dataflow in
  let f8 = Tdfa_workload.Kernels.fib ~n:8 () in
  let f80 = Tdfa_workload.Kernels.fib ~n:80 () in
  let est f = Tdfa_core.Setup.estimated_program_cycles f (Loops.analyze f) in
  Alcotest.(check bool) "10x trips ~ 10x cycles" true
    (est f80 > 8.0 *. est f8);
  (* The estimate approximates the interpreter's cycle count. *)
  let actual = float_of_int (Tdfa_exec.Interp.run_func f80).Tdfa_exec.Interp.cycles in
  let ratio = est f80 /. actual in
  Alcotest.(check bool) "within 2x of measured" true (ratio > 0.5 && ratio < 2.0)

let test_deps_is_topological () =
  let var = Var.of_string in
  let body =
    [|
      Instr.Const (var "a", 1);
      Instr.Binop (Instr.Add, var "b", var "a", var "a");
      Instr.Binop (Instr.Add, var "c", var "b", var "a");
    |]
  in
  Alcotest.(check bool) "identity order ok" true
    (Deps.is_topological body [ 0; 1; 2 ]);
  Alcotest.(check bool) "reversed violates RAW" false
    (Deps.is_topological body [ 2; 1; 0 ]);
  Alcotest.(check bool) "wrong length rejected" false
    (Deps.is_topological body [ 0; 1 ]);
  Alcotest.(check bool) "duplicate index rejected" false
    (Deps.is_topological body [ 0; 1; 1 ])

let test_alloc_with_measured_policy () =
  (* The feedback policy is a first-class allocation policy. *)
  let temps = Array.init 64 (fun i -> 320.0 +. float_of_int (i mod 7)) in
  let f = Tdfa_workload.Kernels.fir () in
  let r =
    Tdfa_regalloc.Alloc.allocate f layout8
      ~policy:(Tdfa_regalloc.Policy.Measured temps)
  in
  Alcotest.(check int) "no spills" 0
    (Var.Set.cardinal r.Tdfa_regalloc.Alloc.spilled);
  (* Every variable of the function got a register. *)
  Var.Set.iter
    (fun v ->
      Alcotest.(check bool)
        (Var.to_string v ^ " assigned")
        true
        (Tdfa_regalloc.Assignment.cell_of_var r.Tdfa_regalloc.Alloc.assignment v
         <> None))
    (Func.all_vars r.Tdfa_regalloc.Alloc.func)

let test_region_grid_nonuniform () =
  let r = Tdfa_floorplan.Region.grid layout8 ~rows:2 ~cols:4 in
  Alcotest.(check int) "8 regions" 8 (Tdfa_floorplan.Region.num_regions r);
  Alcotest.(check int) "8 cells each" 8
    (List.length (Tdfa_floorplan.Region.cells_of_region r 0))

let test_simulate_trace_window_count () =
  let var = Var.of_string in
  let events =
    List.init 2500 (fun i ->
        { Tdfa_exec.Trace.cycle = i; var = var "v"; kind = Tdfa_exec.Trace.Read })
  in
  let t = Tdfa_exec.Trace.of_events ~cycles:2500 events in
  let model = Tdfa_thermal.Rc_model.build layout8 Tdfa_thermal.Params.default in
  let sim =
    Tdfa_exec.Driver.simulate_trace ~window_cycles:1000 model t
      ~cell_of_var:(fun _ -> Some 0)
  in
  (* 2500 cycles at 1000-cycle windows = 3 windows = 3 peak samples. *)
  Alcotest.(check int) "three windows" 3
    (List.length (Tdfa_thermal.Simulator.peak_history sim))

let test_interproc_granularity () =
  (* The interprocedural analysis respects the granularity knob. *)
  let p = Tdfa_workload.Kernels.multiproc_program () in
  let table = Hashtbl.create 4 in
  List.iter
    (fun (f : Func.t) ->
      let a =
        Tdfa_regalloc.Alloc.allocate f layout8
          ~policy:Tdfa_regalloc.Policy.First_fit
      in
      Hashtbl.replace table f.Func.name a.Tdfa_regalloc.Alloc.assignment)
    (Program.funcs p);
  let r =
    Tdfa_core.Interproc.run ~granularity:4 ~layout:layout8
      ~assignment_of:(fun f -> Hashtbl.find table f.Func.name)
      p
  in
  Alcotest.(check int) "coarse state" 4
    (Tdfa_core.Thermal_state.num_points r.Tdfa_core.Interproc.program_peak)

let suite =
  let tc = Alcotest.test_case in
  [
    ( "misc",
      [
        tc "heatmap fixed scale clamps" `Quick test_heatmap_fixed_scale_clamps;
        tc "program print/parse" `Quick test_printer_program_roundtrip;
        tc "empty trace windows" `Quick test_windowed_counts_empty_trace;
        tc "cycle estimate tracks trips" `Quick test_estimated_program_cycles_tracks_trips;
        tc "deps topological check" `Quick test_deps_is_topological;
        tc "alloc with measured policy" `Quick test_alloc_with_measured_policy;
        tc "non-uniform region grid" `Quick test_region_grid_nonuniform;
        tc "simulate trace windows" `Quick test_simulate_trace_window_count;
        tc "interproc granularity" `Quick test_interproc_granularity;
      ] );
  ]
