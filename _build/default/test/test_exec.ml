(* Tests of the interpreter, the trace module and the thermal driver. *)

open Tdfa_ir
open Tdfa_exec

let var = Var.of_string

(* --- Interpreter: functional correctness ------------------------------- *)

let test_fib_value () =
  let o = Interp.run_func (Tdfa_workload.Kernels.fib ~n:10 ()) in
  Alcotest.(check (option int)) "fib(10) loop value" (Some 55) o.Interp.return_value

let test_sum_loop () =
  (* sum 0..n-1 via the builder scaffold. *)
  let b = Builder.create ~name:"sum" ~params:[] in
  let acc = Builder.const b 0 in
  let (_ : Var.t) =
    Tdfa_workload.Kernels.counted_loop b ~count:10 (fun i ->
        Builder.emit b (Instr.Binop (Instr.Add, acc, acc, i)))
  in
  Builder.ret b (Some acc);
  let o = Interp.run_func (Builder.finish b) in
  Alcotest.(check (option int)) "sum 0..9" (Some 45) o.Interp.return_value

let test_memory_roundtrip () =
  let b = Builder.create ~name:"mem" ~params:[] in
  let base = Builder.const b 100 in
  let v = Builder.const b 7 in
  Builder.store b ~value:v ~base 5;
  let r = Builder.load b ~base 5 in
  Builder.ret b (Some r);
  let o = Interp.run_func (Builder.finish b) in
  Alcotest.(check (option int)) "store/load" (Some 7) o.Interp.return_value;
  Alcotest.(check bool) "memory recorded" true
    (List.mem (105, 7) o.Interp.memory)

let test_uninitialised_memory_deterministic () =
  let b = Builder.create ~name:"read" ~params:[] in
  let base = Builder.const b 100 in
  let r = Builder.load b ~base 0 in
  Builder.ret b (Some r);
  let f = Builder.finish b in
  let o1 = Interp.run_func f in
  let o2 = Interp.run_func f in
  Alcotest.(check (option int)) "same pattern" o1.Interp.return_value
    o2.Interp.return_value

let test_params_passed () =
  let b = Builder.create ~name:"addp" ~params:[ "x"; "y" ] in
  let s = Builder.binop b Instr.Add (Builder.param b 0) (Builder.param b 1) in
  Builder.ret b (Some s);
  let o = Interp.run_func ~args:[ 30; 12 ] (Builder.finish b) in
  Alcotest.(check (option int)) "30+12" (Some 42) o.Interp.return_value

let test_missing_args_default_zero () =
  let b = Builder.create ~name:"addp" ~params:[ "x"; "y" ] in
  let s = Builder.binop b Instr.Add (Builder.param b 0) (Builder.param b 1) in
  Builder.ret b (Some s);
  let o = Interp.run_func ~args:[ 5 ] (Builder.finish b) in
  Alcotest.(check (option int)) "5+0" (Some 5) o.Interp.return_value

let test_call_between_functions () =
  let callee =
    let b = Builder.create ~name:"double" ~params:[ "x" ] in
    let two = Builder.const b 2 in
    let r = Builder.binop b Instr.Mul (Builder.param b 0) two in
    Builder.ret b (Some r);
    Builder.finish b
  in
  let caller =
    let b = Builder.create ~name:"main" ~params:[] in
    let x = Builder.const b 21 in
    let r = Builder.call b "double" [ x ] in
    Builder.ret b (Some r);
    Builder.finish b
  in
  let p = Program.of_funcs [ caller; callee ] in
  let o = Interp.run p "main" in
  Alcotest.(check (option int)) "call result" (Some 42) o.Interp.return_value

let test_unknown_callee_raises () =
  let b = Builder.create ~name:"main" ~params:[] in
  Builder.call_void b "missing" [];
  Builder.ret b None;
  let f = Builder.finish b in
  Alcotest.(check bool) "runtime error" true
    (match Interp.run_func f with
     | (_ : Interp.outcome) -> false
     | exception Interp.Runtime_error _ -> true)

let test_runaway_recursion_guarded () =
  (* f() { return f(); } — infinite recursion must fail cleanly. *)
  let b = Builder.create ~name:"f" ~params:[] in
  let r = Builder.call b "f" [] in
  Builder.ret b (Some r);
  let f = Builder.finish b in
  Alcotest.(check bool) "depth guard fires" true
    (match Interp.run_func ~fuel:100_000_000 f with
     | (_ : Interp.outcome) -> false
     | exception Interp.Runtime_error _ -> true
     | exception Interp.Out_of_fuel _ -> true)

let test_bounded_recursion_works () =
  (* Recursive factorial within the depth limit. *)
  let b = Builder.create ~name:"fact" ~params:[ "n" ] in
  let n = Builder.param b 0 in
  let one = Builder.const b 1 in
  let stop = Builder.binop b Instr.Sle n one in
  let l_base = Label.of_string "base" in
  let l_rec = Label.of_string "rec" in
  Builder.branch b stop l_base l_rec;
  Builder.start_block b l_base;
  Builder.ret b (Some one);
  Builder.start_block b l_rec;
  let m = Builder.binop b Instr.Sub n one in
  let sub = Builder.call b "fact" [ m ] in
  let r = Builder.binop b Instr.Mul n sub in
  Builder.ret b (Some r);
  let f = Builder.finish b in
  let o = Interp.run_func ~args:[ 10 ] f in
  Alcotest.(check (option int)) "10!" (Some 3628800) o.Interp.return_value

let test_out_of_fuel () =
  (* An infinite loop must hit the fuel limit. *)
  let lbl = Label.of_string in
  let f =
    Func.make ~name:"inf" ~params:[]
      [ Block.make (lbl "entry") [] (Block.Jump (lbl "entry")) ]
  in
  Alcotest.(check bool) "out of fuel" true
    (match Interp.run_func ~fuel:1000 f with
     | (_ : Interp.outcome) -> false
     | exception Interp.Out_of_fuel _ -> true)

let test_exec_counts () =
  let o = Interp.run_func (Tdfa_workload.Kernels.fib ~n:10 ()) in
  (* The loop body runs exactly 10 times. *)
  let body_count =
    Label.Map.fold
      (fun _ c acc -> max acc c)
      o.Interp.exec_counts 0
  in
  Alcotest.(check bool) "body ran 10 or 11 times (header)" true
    (body_count >= 10 && body_count <= 11)

(* --- Traces -------------------------------------------------------------- *)

let test_trace_cycles_nondecreasing () =
  let o = Interp.run_func (Tdfa_workload.Kernels.crc ~bytes:4 ()) in
  let prev = ref (-1) in
  Trace.iter
    (fun e ->
      if e.Trace.cycle < !prev then Alcotest.fail "cycle went backwards";
      prev := e.Trace.cycle)
    o.Interp.trace

let test_trace_counts_match_instr_shape () =
  (* A single add: two reads, one write. *)
  let b = Builder.create ~name:"one" ~params:[ "x" ] in
  let x = Builder.param b 0 in
  let s = Builder.binop b Instr.Add x x in
  Builder.ret b (Some s);
  let o = Interp.run_func (Builder.finish b) in
  let reads =
    Array.fold_left
      (fun acc e -> if e.Trace.kind = Trace.Read then acc + 1 else acc)
      0
      (Trace.events o.Interp.trace)
  in
  let writes =
    Array.fold_left
      (fun acc e -> if e.Trace.kind = Trace.Write then acc + 1 else acc)
      0
      (Trace.events o.Interp.trace)
  in
  (* add reads x twice, writes s once; ret reads s once. *)
  Alcotest.(check int) "reads" 3 reads;
  Alcotest.(check int) "writes" 1 writes

let mk_trace events cycles = Trace.of_events ~cycles events

let test_access_counts_mapping () =
  let events =
    [
      { Trace.cycle = 0; var = var "a"; kind = Trace.Read };
      { Trace.cycle = 1; var = var "a"; kind = Trace.Write };
      { Trace.cycle = 2; var = var "b"; kind = Trace.Read };
      { Trace.cycle = 3; var = var "spilled"; kind = Trace.Read };
    ]
  in
  let t = mk_trace events 4 in
  let cell_of_var v =
    match Var.to_string v with "a" -> Some 0 | "b" -> Some 3 | _ -> None
  in
  let reads, writes = Trace.access_counts t ~cell_of_var ~num_cells:4 in
  Alcotest.(check int) "a reads" 1 reads.(0);
  Alcotest.(check int) "a writes" 1 writes.(0);
  Alcotest.(check int) "b reads" 1 reads.(3);
  Alcotest.(check int) "unmapped dropped" 0 (reads.(1) + reads.(2))

let test_windowed_counts_sum_to_totals () =
  let o = Interp.run_func (Tdfa_workload.Kernels.dotprod ~n:16 ()) in
  let alloc =
    Tdfa_regalloc.Alloc.allocate (Tdfa_workload.Kernels.dotprod ~n:16 ())
      (Tdfa_floorplan.Layout.make ~rows:8 ~cols:8 ())
      ~policy:Tdfa_regalloc.Policy.First_fit
  in
  ignore alloc;
  let cell_of_var v = Some (Hashtbl.hash (Var.to_string v) mod 64) in
  let totals_r, totals_w =
    Trace.access_counts o.Interp.trace ~cell_of_var ~num_cells:64
  in
  let windows =
    Trace.windowed_counts o.Interp.trace ~cell_of_var ~num_cells:64
      ~window_cycles:50
  in
  let sum_r = Array.make 64 0 and sum_w = Array.make 64 0 in
  Array.iter
    (fun (r, w) ->
      Array.iteri (fun i x -> sum_r.(i) <- sum_r.(i) + x) r;
      Array.iteri (fun i x -> sum_w.(i) <- sum_w.(i) + x) w)
    windows;
  Alcotest.(check bool) "windowed reads sum to totals" true (sum_r = totals_r);
  Alcotest.(check bool) "windowed writes sum to totals" true (sum_w = totals_w)

let test_per_var_counts () =
  let events =
    [
      { Trace.cycle = 0; var = var "a"; kind = Trace.Read };
      { Trace.cycle = 0; var = var "a"; kind = Trace.Write };
      { Trace.cycle = 1; var = var "b"; kind = Trace.Read };
    ]
  in
  let t = mk_trace events 2 in
  let counts = Trace.per_var_counts t in
  Alcotest.(check (option int)) "a" (Some 2) (Var.Map.find_opt (var "a") counts);
  Alcotest.(check (option int)) "b" (Some 1) (Var.Map.find_opt (var "b") counts)

(* --- Driver ---------------------------------------------------------------- *)

let layout = Tdfa_floorplan.Layout.make ~rows:4 ~cols:4 ()
let model = Tdfa_thermal.Rc_model.build layout Tdfa_thermal.Params.default

let test_power_of_counts () =
  let p = Tdfa_thermal.Params.default in
  let reads = Array.make 16 0 and writes = Array.make 16 0 in
  reads.(2) <- 1000;
  (* 1000 reads in 1000 cycles at 1 GHz: P = E_read * 1e9. *)
  let power =
    Driver.power_of_counts p ~window_cycles:1000 ~reads ~writes
  in
  Alcotest.(check (float 1e-9))
    "every-cycle read power"
    (p.Tdfa_thermal.Params.read_energy_j *. p.Tdfa_thermal.Params.clock_hz)
    power.(2);
  Alcotest.(check (float 1e-15)) "idle cell" 0.0 power.(0)

let test_steady_temps_hot_cell () =
  (* A trace hammering one cell yields its hottest temperature there. *)
  let events =
    List.init 2000 (fun i ->
        { Trace.cycle = i; var = var "h"; kind = Trace.Read })
  in
  let t = mk_trace events 2000 in
  let temps =
    Driver.steady_temps model t ~cell_of_var:(fun v ->
        if Var.equal v (var "h") then Some 5 else None)
  in
  Alcotest.(check int) "hottest at cell 5" 5 (Tdfa_thermal.Metrics.peak_cell temps);
  Alcotest.(check bool) "above ambient" true
    (temps.(5) > Tdfa_thermal.Params.default.Tdfa_thermal.Params.ambient_k)

let test_simulate_trace_runs () =
  let o = Interp.run_func (Tdfa_workload.Kernels.fib ~n:20 ()) in
  let sim =
    Driver.simulate_trace model o.Interp.trace ~cell_of_var:(fun v ->
        Some (Hashtbl.hash (Var.to_string v) mod 16))
  in
  let temps = Tdfa_thermal.Simulator.temps sim in
  Alcotest.(check int) "16 nodes" 16 (Array.length temps);
  Array.iter
    (fun t -> Alcotest.(check bool) "sane temperature" true (t >= 317.0 && t < 500.0))
    temps

let suite =
  let tc = Alcotest.test_case in
  [
    ( "exec.interp",
      [
        tc "fib value" `Quick test_fib_value;
        tc "sum loop" `Quick test_sum_loop;
        tc "memory roundtrip" `Quick test_memory_roundtrip;
        tc "deterministic uninitialised memory" `Quick
          test_uninitialised_memory_deterministic;
        tc "parameters" `Quick test_params_passed;
        tc "missing args default" `Quick test_missing_args_default_zero;
        tc "cross-function call" `Quick test_call_between_functions;
        tc "unknown callee" `Quick test_unknown_callee_raises;
        tc "runaway recursion guarded" `Quick test_runaway_recursion_guarded;
        tc "bounded recursion works" `Quick test_bounded_recursion_works;
        tc "out of fuel" `Quick test_out_of_fuel;
        tc "exec counts" `Quick test_exec_counts;
      ] );
    ( "exec.trace",
      [
        tc "cycles nondecreasing" `Quick test_trace_cycles_nondecreasing;
        tc "counts match instr shape" `Quick test_trace_counts_match_instr_shape;
        tc "access counts mapping" `Quick test_access_counts_mapping;
        tc "windowed sums to totals" `Quick test_windowed_counts_sum_to_totals;
        tc "per-var counts" `Quick test_per_var_counts;
      ] );
    ( "exec.driver",
      [
        tc "power of counts" `Quick test_power_of_counts;
        tc "steady temps hot cell" `Quick test_steady_temps_hot_cell;
        tc "simulate trace" `Quick test_simulate_trace_runs;
      ] );
  ]
