(* Tests of the register allocator: interference construction, colouring
   validity under every policy, policy behaviour and spill-code
   correctness. *)

open Tdfa_ir
open Tdfa_dataflow
open Tdfa_floorplan
open Tdfa_regalloc

let var = Var.of_string
let lbl = Label.of_string
let layout = Layout.make ~rows:8 ~cols:8 ()

(* --- Interference --------------------------------------------------------- *)

let straight () =
  Func.make ~name:"s" ~params:[]
    [
      Block.make (lbl "entry")
        [
          Instr.Const (var "a", 1);
          Instr.Const (var "b", 2);
          Instr.Binop (Instr.Add, var "c", var "a", var "b");
        ]
        (Block.Return (Some (var "c")));
    ]

let test_interference_basic () =
  let f = straight () in
  let g = Interference.build f (Liveness.analyze f) in
  Alcotest.(check bool) "a-b interfere" true (Interference.interferes g (var "a") (var "b"));
  Alcotest.(check bool) "a-c do not" false (Interference.interferes g (var "a") (var "c"));
  Alcotest.(check bool) "symmetric" true (Interference.interferes g (var "b") (var "a"))

let test_interference_move_exempt () =
  let f =
    Func.make ~name:"mv" ~params:[ var "a" ]
      [
        Block.make (lbl "entry")
          [ Instr.Unop (Instr.Mov, var "b", var "a") ]
          (Block.Return (Some (var "b")));
      ]
  in
  let g = Interference.build f (Liveness.analyze f) in
  Alcotest.(check bool) "move pair does not interfere" false
    (Interference.interferes g (var "a") (var "b"))

let test_interference_params () =
  let f =
    Func.make ~name:"p" ~params:[ var "x"; var "y" ]
      [
        Block.make (lbl "entry")
          [ Instr.Binop (Instr.Add, var "z", var "x", var "y") ]
          (Block.Return (Some (var "z")));
      ]
  in
  let g = Interference.build f (Liveness.analyze f) in
  Alcotest.(check bool) "params interfere" true
    (Interference.interferes g (var "x") (var "y"))

let test_interference_edge_count () =
  let f = straight () in
  let g = Interference.build f (Liveness.analyze f) in
  Alcotest.(check int) "one edge" 1 (Interference.num_edges g);
  Alcotest.(check int) "degree of a" 1 (Interference.degree g (var "a"))

(* --- Allocation validity: the fundamental property ------------------------- *)

(* Any two simultaneously-live variables must get different cells. *)
let assert_valid_allocation name (result : Alloc.result) =
  let func = result.Alloc.func in
  let live = Liveness.analyze func in
  let cell v = Assignment.cell_of_var result.Alloc.assignment v in
  let check_set s =
    let cells =
      Var.Set.elements s
      |> List.filter_map cell
    in
    let distinct = List.sort_uniq Int.compare cells in
    if List.length cells <> List.length distinct then
      Alcotest.failf "%s: overlapping lives share a cell" name
  in
  List.iter
    (fun (b : Block.t) ->
      let l = b.Block.label in
      check_set (Liveness.live_in live l);
      Array.iteri (fun i _ -> check_set (Liveness.live_after_instr live l i)) b.Block.body)
    func.Func.blocks;
  (* Every variable of the rewritten function is assigned. *)
  Var.Set.iter
    (fun v ->
      if cell v = None then
        Alcotest.failf "%s: %s unassigned" name (Var.to_string v))
    (Func.all_vars func);
  ignore func

let test_allocation_valid_all_kernels_all_policies () =
  List.iter
    (fun (name, f) ->
      List.iter
        (fun policy ->
          let r = Alloc.allocate f layout ~policy in
          assert_valid_allocation
            (Printf.sprintf "%s/%s" name (Policy.name policy))
            r)
        Policy.all)
    Tdfa_workload.Kernels.all

let test_allocation_preserves_semantics () =
  (* Allocation itself never rewrites code unless spilling. With an ample
     RF no kernel spills, and the allocated function is the input. *)
  List.iter
    (fun (name, f) ->
      let r = Alloc.allocate f layout ~policy:Policy.First_fit in
      Alcotest.(check int) (name ^ " no spills") 0
        (Var.Set.cardinal r.Alloc.spilled);
      Alcotest.(check int) (name ^ " one round") 1 r.Alloc.rounds)
    Tdfa_workload.Kernels.all

(* --- Policies --------------------------------------------------------------- *)

let test_first_fit_prefers_low_cells () =
  let c = Policy.make_chooser Policy.First_fit layout in
  Alcotest.(check (option int)) "first free" (Some 0)
    (Policy.choose c ~forbidden:Policy.Int_set.empty ~weight:1.0);
  Alcotest.(check (option int)) "skips forbidden" (Some 2)
    (Policy.choose c ~forbidden:(Policy.Int_set.of_list [ 0; 1 ]) ~weight:1.0)

let test_round_robin_advances () =
  let c = Policy.make_chooser Policy.Round_robin layout in
  let pick () = Policy.choose c ~forbidden:Policy.Int_set.empty ~weight:1.0 in
  Alcotest.(check (option int)) "first" (Some 0) (pick ());
  Alcotest.(check (option int)) "second" (Some 1) (pick ());
  Alcotest.(check (option int)) "third" (Some 2) (pick ())

let test_random_seeded_deterministic () =
  let picks seed =
    let c = Policy.make_chooser (Policy.Random seed) layout in
    List.init 10 (fun _ ->
        Policy.choose c ~forbidden:Policy.Int_set.empty ~weight:1.0)
  in
  Alcotest.(check bool) "same seed same picks" true (picks 1 = picks 1);
  Alcotest.(check bool) "different seeds differ" true (picks 1 <> picks 2)

let test_chessboard_black_first () =
  let c = Policy.make_chooser Policy.Chessboard layout in
  (* The first 32 picks (with previous picks forbidden) are all black. *)
  let forbidden = ref Policy.Int_set.empty in
  for k = 1 to 32 do
    match Policy.choose c ~forbidden:!forbidden ~weight:1.0 with
    | Some cell ->
      Alcotest.(check int)
        (Printf.sprintf "pick %d black" k)
        0
        (Layout.chessboard_color layout cell);
      forbidden := Policy.Int_set.add cell !forbidden
    | None -> Alcotest.fail "ran out of cells early"
  done;
  (* The 33rd pick must be white. *)
  match Policy.choose c ~forbidden:!forbidden ~weight:1.0 with
  | Some cell ->
    Alcotest.(check int) "overflow goes white" 1 (Layout.chessboard_color layout cell)
  | None -> Alcotest.fail "no cell"

let test_thermal_spread_separates_hot_vars () =
  let c = Policy.make_chooser Policy.Thermal_spread layout in
  (* Two heavy variables should land far apart. *)
  let p1 = Policy.choose c ~forbidden:Policy.Int_set.empty ~weight:1000.0 in
  let p2 = Policy.choose c ~forbidden:Policy.Int_set.empty ~weight:1000.0 in
  match (p1, p2) with
  | Some a, Some b ->
    Alcotest.(check bool) "far apart" true (Layout.manhattan layout a b >= 7)
  | _, _ -> Alcotest.fail "no picks"

let test_bank_pack_fills_bank_first () =
  let c = Policy.make_chooser (Policy.Bank_pack 4) layout in
  (* The first 16 picks all land in bank 0 (columns 0-1). *)
  let forbidden = ref Policy.Int_set.empty in
  for k = 1 to 16 do
    match Policy.choose c ~forbidden:!forbidden ~weight:1.0 with
    | Some cell ->
      Alcotest.(check int)
        (Printf.sprintf "pick %d in bank 0" k)
        0
        (Policy.bank_of_cell layout ~banks:4 cell);
      forbidden := Policy.Int_set.add cell !forbidden
    | None -> Alcotest.fail "ran out of cells"
  done;
  (* The 17th pick spills into bank 1. *)
  match Policy.choose c ~forbidden:!forbidden ~weight:1.0 with
  | Some cell ->
    Alcotest.(check int) "overflow to bank 1" 1
      (Policy.bank_of_cell layout ~banks:4 cell)
  | None -> Alcotest.fail "no cell"

let test_measured_policy_avoids_hot_cells () =
  (* One measured-hot corner: the next assignment round avoids it. *)
  let temps = Array.make 64 320.0 in
  temps.(0) <- 360.0;
  temps.(1) <- 355.0;
  temps.(8) <- 355.0;
  let c = Policy.make_chooser (Policy.Measured temps) layout in
  match Policy.choose c ~forbidden:Policy.Int_set.empty ~weight:1.0 with
  | Some cell ->
    Alcotest.(check bool) "first pick far from the hot corner" true
      (Layout.manhattan layout cell 0 > 3)
  | None -> Alcotest.fail "no cell"

let test_measured_policy_spreads_within_round () =
  let temps = Array.make 64 320.0 in
  let c = Policy.make_chooser (Policy.Measured temps) layout in
  let p1 = Policy.choose c ~forbidden:Policy.Int_set.empty ~weight:1.0 in
  let p2 = Policy.choose c ~forbidden:Policy.Int_set.empty ~weight:1.0 in
  match (p1, p2) with
  | Some a, Some b ->
    Alcotest.(check bool) "second pick keeps distance" true
      (Layout.manhattan layout a b >= 4)
  | _, _ -> Alcotest.fail "no picks"

let test_bank_of_cell () =
  Alcotest.(check int) "col 0 -> bank 0" 0 (Policy.bank_of_cell layout ~banks:4 0);
  Alcotest.(check int) "col 7 -> bank 3" 3 (Policy.bank_of_cell layout ~banks:4 7);
  Alcotest.(check int) "col 3 -> bank 1" 1 (Policy.bank_of_cell layout ~banks:4 3)

let test_choose_none_when_all_forbidden () =
  let all = Policy.Int_set.of_list (Layout.cells layout) in
  List.iter
    (fun p ->
      let c = Policy.make_chooser p layout in
      Alcotest.(check (option int))
        (Policy.name p ^ " returns None")
        None
        (Policy.choose c ~forbidden:all ~weight:1.0))
    Policy.all

(* --- Assignment -------------------------------------------------------------- *)

let test_assignment_basics () =
  let a = Assignment.add (Assignment.add Assignment.empty (var "x") 3) (var "y") 3 in
  Alcotest.(check (option int)) "lookup" (Some 3) (Assignment.cell_of_var a (var "x"));
  Alcotest.(check (option int)) "missing" None (Assignment.cell_of_var a (var "z"));
  Alcotest.(check (list int)) "cells dedup" [ 3 ] (Assignment.cells_in_use a);
  Alcotest.(check int) "size" 2 (Assignment.size a)

(* --- Spilling ------------------------------------------------------------------ *)

let run_value f = (Tdfa_exec.Interp.run_func f).Tdfa_exec.Interp.return_value

let low_memory o =
  List.filter (fun (a, _) -> a < Spill.base_address) o.Tdfa_exec.Interp.memory

let test_spill_preserves_semantics () =
  List.iter
    (fun (name, f) ->
      (* Spill the two most-used variables. *)
      let ud = Use_def.build f in
      let by_use =
        Var.Set.elements (Func.defined_vars f)
        |> List.filter (fun v -> not (List.exists (Var.equal v) f.Func.params))
        |> List.sort (fun a b ->
               Int.compare (Use_def.static_use_count ud b)
                 (Use_def.static_use_count ud a))
      in
      let chosen = List.filteri (fun i _ -> i < 2) by_use in
      let f' = Spill.rewrite f (Var.Set.of_list chosen) in
      (match Validate.check f' with
       | Ok () -> ()
       | Error e -> Alcotest.failf "%s: invalid after spill:\n%s" name e);
      let o0 = Tdfa_exec.Interp.run_func f in
      let o1 = Tdfa_exec.Interp.run_func f' in
      Alcotest.(check (option int))
        (name ^ " return value") o0.Tdfa_exec.Interp.return_value
        o1.Tdfa_exec.Interp.return_value;
      Alcotest.(check bool)
        (name ^ " memory below spill area") true
        (low_memory o0 = low_memory o1))
    Tdfa_workload.Kernels.all

let test_spill_empty_set_is_identity () =
  let f = straight () in
  let f' = Spill.rewrite f Var.Set.empty in
  Alcotest.(check string) "identity" (Printer.func_to_string f)
    (Printer.func_to_string f')

let test_spill_removes_long_range () =
  let f = Tdfa_workload.Kernels.fib () in
  let live0 = Liveness.analyze f in
  ignore live0;
  (* Spilling a loop-carried variable adds loads/stores. *)
  let f' = Spill.rewrite f (Var.Set.singleton (var "t0")) in
  Alcotest.(check bool) "more instructions" true
    (Func.instr_count f' > Func.instr_count f);
  Alcotest.(check (option int)) "fib value unchanged" (run_value f) (run_value f')

let test_spill_param () =
  let b = Builder.create ~name:"pf" ~params:[ "x" ] in
  let x = Builder.param b 0 in
  let one = Builder.const b 1 in
  let r = Builder.binop b Instr.Add x one in
  Builder.ret b (Some r);
  let f = Builder.finish b in
  let f' = Spill.rewrite f (Var.Set.singleton (var "x")) in
  (match Validate.check f' with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  let o = Tdfa_exec.Interp.run_func ~args:[ 41 ] f' in
  Alcotest.(check (option int)) "param spilled, value kept" (Some 42)
    o.Tdfa_exec.Interp.return_value

let test_forced_spilling_small_rf () =
  (* A 2x2 register file cannot hold high_pressure's 24 live variables:
     the allocator must spill and still produce a valid, semantics-
     preserving result. *)
  let tiny = Layout.make ~rows:2 ~cols:2 () in
  let f = Tdfa_workload.Kernels.high_pressure ~live:8 ~iters:8 () in
  let r = Alloc.allocate f tiny ~policy:Policy.First_fit in
  Alcotest.(check bool) "spilled something" true
    (not (Var.Set.is_empty r.Alloc.spilled));
  assert_valid_allocation "tiny-rf" r;
  Alcotest.(check (option int)) "semantics preserved" (run_value f)
    (run_value r.Alloc.func)

(* --- Re-assignment (ref [3]) ------------------------------------------------ *)

let weights_table weights v =
  match List.assoc_opt (Var.to_string v) weights with
  | Some w -> w
  | None -> 1.0

let test_reassign_never_worsens_cost () =
  List.iter
    (fun (name, f) ->
      let r = Alloc.allocate f layout ~policy:Policy.First_fit in
      let weights = Alloc.default_weights r.Alloc.func in
      let before = Reassign.cost layout ~weights r.Alloc.assignment in
      let improved = Reassign.improve layout ~weights r.Alloc.assignment in
      let after = Reassign.cost layout ~weights improved in
      if after > before +. 1e-9 then
        Alcotest.failf "%s: reassignment worsened the cost" name)
    Tdfa_workload.Kernels.all

let test_reassign_spreads_clustered_assignment () =
  (* Two hot variables packed into adjacent cells should be pulled
     apart. *)
  let a = Assignment.of_bindings [ (var "h1", 0); (var "h2", 1) ] in
  let weights = weights_table [ ("h1", 100.0); ("h2", 100.0) ] in
  let improved = Reassign.improve layout ~weights a in
  match
    ( Assignment.cell_of_var improved (var "h1"),
      Assignment.cell_of_var improved (var "h2") )
  with
  | Some c1, Some c2 ->
    Alcotest.(check bool) "pulled apart" true (Layout.manhattan layout c1 c2 > 4)
  | _, _ -> Alcotest.fail "variables lost"

let test_reassign_preserves_validity () =
  let f = Tdfa_workload.Kernels.horner () in
  let r = Alloc.allocate f layout ~policy:Policy.First_fit in
  let weights = Alloc.default_weights r.Alloc.func in
  let improved = Reassign.improve layout ~weights r.Alloc.assignment in
  (* All variables still assigned; interfering variables still distinct. *)
  assert_valid_allocation "reassigned"
    { r with Alloc.assignment = improved }

let test_reassign_deterministic () =
  let f = Tdfa_workload.Kernels.fir () in
  let r = Alloc.allocate f layout ~policy:Policy.First_fit in
  let weights = Alloc.default_weights r.Alloc.func in
  let a1 = Reassign.improve ~seed:7 layout ~weights r.Alloc.assignment in
  let a2 = Reassign.improve ~seed:7 layout ~weights r.Alloc.assignment in
  Alcotest.(check bool) "same result" true
    (Assignment.bindings a1 = Assignment.bindings a2)

let test_allocation_deterministic () =
  let f = Tdfa_workload.Kernels.matmul () in
  let a1 = Alloc.allocate f layout ~policy:Policy.Thermal_spread in
  let a2 = Alloc.allocate f layout ~policy:Policy.Thermal_spread in
  Alcotest.(check bool) "same assignment" true
    (Assignment.bindings a1.Alloc.assignment = Assignment.bindings a2.Alloc.assignment)

let suite =
  let tc = Alcotest.test_case in
  [
    ( "regalloc.interference",
      [
        tc "basic edges" `Quick test_interference_basic;
        tc "move exempt" `Quick test_interference_move_exempt;
        tc "params interfere" `Quick test_interference_params;
        tc "edge count" `Quick test_interference_edge_count;
      ] );
    ( "regalloc.validity",
      [
        tc "all kernels x all policies" `Quick
          test_allocation_valid_all_kernels_all_policies;
        tc "no spurious spills" `Quick test_allocation_preserves_semantics;
        tc "deterministic" `Quick test_allocation_deterministic;
      ] );
    ( "regalloc.policy",
      [
        tc "first-fit low cells" `Quick test_first_fit_prefers_low_cells;
        tc "round-robin advances" `Quick test_round_robin_advances;
        tc "random seeded" `Quick test_random_seeded_deterministic;
        tc "chessboard black first" `Quick test_chessboard_black_first;
        tc "thermal-spread separates" `Quick test_thermal_spread_separates_hot_vars;
        tc "bank-pack fills bank first" `Quick test_bank_pack_fills_bank_first;
        tc "measured avoids hot cells" `Quick test_measured_policy_avoids_hot_cells;
        tc "measured spreads in round" `Quick test_measured_policy_spreads_within_round;
        tc "bank of cell" `Quick test_bank_of_cell;
        tc "none when full" `Quick test_choose_none_when_all_forbidden;
      ] );
    ( "regalloc.assignment",
      [ tc "basics" `Quick test_assignment_basics ] );
    ( "regalloc.reassign",
      [
        tc "never worsens cost" `Quick test_reassign_never_worsens_cost;
        tc "spreads clustered" `Quick test_reassign_spreads_clustered_assignment;
        tc "preserves validity" `Quick test_reassign_preserves_validity;
        tc "deterministic" `Quick test_reassign_deterministic;
      ] );
    ( "regalloc.spill",
      [
        tc "semantics preserved (all kernels)" `Quick test_spill_preserves_semantics;
        tc "empty set identity" `Quick test_spill_empty_set_is_identity;
        tc "loop-carried spill" `Quick test_spill_removes_long_range;
        tc "spilled parameter" `Quick test_spill_param;
        tc "forced spilling on tiny RF" `Quick test_forced_spilling_small_rf;
      ] );
  ]
