test/test_vliw.ml: Alcotest Array Binding Block Builder Bundler Deps Fu_thermal Func Instr Int Kernels Label List Machine Tdfa_dataflow Tdfa_floorplan Tdfa_ir Tdfa_thermal Tdfa_vliw Tdfa_workload
