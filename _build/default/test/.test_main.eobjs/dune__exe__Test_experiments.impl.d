test/test_experiments.ml: Alcotest Experiments Float List String Tdfa_harness
