test/test_floorplan.ml: Alcotest Fun Layout List QCheck2 QCheck_alcotest Region Tdfa_floorplan
