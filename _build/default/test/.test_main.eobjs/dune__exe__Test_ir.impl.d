test/test_ir.ml: Alcotest Block Builder Format Fun Func Instr Label List Option Parser Printer Program QCheck2 QCheck_alcotest String Tdfa_ir Tdfa_workload Validate Var
