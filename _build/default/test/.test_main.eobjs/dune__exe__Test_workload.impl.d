test/test_workload.ml: Alcotest Func Generator Kernels List Printer Printexc Printf String Tdfa_core Tdfa_exec Tdfa_floorplan Tdfa_ir Tdfa_regalloc Tdfa_workload Validate
