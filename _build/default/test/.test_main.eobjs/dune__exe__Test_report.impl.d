test/test_report.ml: Alcotest String Table Tdfa_report
