test/test_thermal.ml: Alcotest Array Dtm Format Heatmap Layout List Metrics Params Rc_model Reliability Simulator String Tdfa_floorplan Tdfa_thermal
