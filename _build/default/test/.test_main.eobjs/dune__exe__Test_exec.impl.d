test/test_exec.ml: Alcotest Array Block Builder Driver Func Hashtbl Instr Interp Label List Program Tdfa_exec Tdfa_floorplan Tdfa_ir Tdfa_regalloc Tdfa_thermal Tdfa_workload Trace Var
