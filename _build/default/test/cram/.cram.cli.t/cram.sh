  $ ../../bin/tdfa_cli.exe list-kernels | head -4
  $ ../../bin/tdfa_cli.exe show -k fib > fib.tir
  $ head -3 fib.tir
  $ ../../bin/tdfa_cli.exe analyze -f fib.tir | head -1
  $ cat > sum.tc <<'EOF'
  > fn main() {
  >   var s = 0;
  >   for (var i = 0; i < 16; i = i + 1) { s = s + mem[i]; }
  >   mem[5000] = s;
  >   return s;
  > }
  > EOF
  $ ../../bin/tdfa_cli.exe simulate -f sum.tc -p chessboard | head -1
  $ ../../bin/tdfa_cli.exe show -k nonsense
