(* Tests of the thermal substrate: RC model, steady-state solver,
   transient simulator, metrics and the heatmap renderer. *)

open Tdfa_floorplan
open Tdfa_thermal

let layout = Layout.make ~rows:4 ~cols:4 ()
let params = Params.default
let model = Rc_model.build layout params
let n = Layout.num_cells layout

let test_stability_bound_positive () =
  Alcotest.(check bool) "dt_max > 0" true (Params.max_stable_dt params > 0.0)

let test_steady_zero_power_is_ambient () =
  let temps = Rc_model.steady_state model ~power:(Array.make n 0.0) in
  Array.iter
    (fun t ->
      Alcotest.(check (float 1e-3)) "ambient" params.Params.ambient_k t)
    temps

let test_steady_uniform_power_uniform_temp () =
  let temps = Rc_model.steady_state model ~power:(Array.make n 1.0e-4) in
  let first = temps.(0) in
  Array.iter
    (fun t -> Alcotest.(check (float 1e-3)) "uniform" first t)
    temps;
  (* And the level matches P/g_v exactly (no net lateral flow). *)
  let expected =
    params.Params.ambient_k
    +. (1.0e-4 /. params.Params.vertical_conductance_w_per_k)
  in
  Alcotest.(check (float 0.01)) "P over g_v" expected first

let test_steady_point_source_decays () =
  let power = Array.make n 0.0 in
  power.(5) <- 1.0e-3;
  let temps = Rc_model.steady_state model ~power in
  Alcotest.(check bool) "source hottest" true
    (Array.for_all (fun t -> t <= temps.(5)) temps);
  (* Monotone decay with distance from the source (sampled). *)
  Alcotest.(check bool) "neighbour hotter than far corner" true
    (temps.(6) > temps.(15))

let test_steady_superposition () =
  (* The steady solve is linear in power. *)
  let p1 = Array.make n 0.0 and p2 = Array.make n 0.0 in
  p1.(0) <- 2.0e-4;
  p2.(10) <- 3.0e-4;
  let t1 = Rc_model.steady_state model ~power:p1 in
  let t2 = Rc_model.steady_state model ~power:p2 in
  let sum = Array.mapi (fun i p -> p +. p2.(i)) p1 in
  let t12 = Rc_model.steady_state model ~power:sum in
  let amb = params.Params.ambient_k in
  Array.iteri
    (fun i t ->
      Alcotest.(check (float 0.01)) "superposition"
        (t1.(i) -. amb +. (t2.(i) -. amb))
        (t -. amb))
    t12

let test_derivative_signs () =
  let temps = Array.make n params.Params.ambient_k in
  let power = Array.make n 0.0 in
  power.(3) <- 1.0e-3;
  let d = Rc_model.derivative model ~temps ~power in
  Alcotest.(check bool) "powered node heats" true (d.(3) > 0.0);
  Alcotest.(check (float 1e-12)) "unpowered equilibrium" 0.0 d.(12)

let test_leakage_increases_with_temp () =
  let cold = Array.make n params.Params.ambient_k in
  let hot = Array.make n (params.Params.ambient_k +. 20.0) in
  let lc = Rc_model.leakage_power model ~temps:cold in
  let lh = Rc_model.leakage_power model ~temps:hot in
  Alcotest.(check bool) "leakage grows" true (lh.(0) > lc.(0));
  Alcotest.(check (float 1e-9)) "baseline leakage" params.Params.leakage_w lc.(0)

let test_simulator_converges_to_steady () =
  let sim = Simulator.create model in
  let power = Array.make n 0.0 in
  power.(7) <- 5.0e-4;
  (* Long transient (with leakage feedback) vs steady solve with the
     final leakage folded in. *)
  for _ = 1 to 400 do
    Simulator.step sim ~power ~dt:1.0e-5
  done;
  let transient = Simulator.temps sim in
  let leak = Rc_model.leakage_power model ~temps:transient in
  let total = Array.mapi (fun i p -> p +. leak.(i)) power in
  let steady = Rc_model.steady_state model ~power:total in
  Array.iteri
    (fun i t ->
      Alcotest.(check (float 0.1)) "transient reaches steady" steady.(i) t)
    transient

let test_simulator_reset () =
  let sim = Simulator.create model in
  let power = Array.make n 1.0e-4 in
  Simulator.step sim ~power ~dt:1.0e-4;
  Simulator.reset sim;
  Array.iter
    (fun t -> Alcotest.(check (float 1e-9)) "ambient" params.Params.ambient_k t)
    (Simulator.temps sim);
  Alcotest.(check int) "history cleared" 0 (List.length (Simulator.peak_history sim))

let test_simulator_peak_history_monotone_under_constant_power () =
  let sim = Simulator.create model in
  let power = Array.make n 1.0e-4 in
  Simulator.run_windows sim (fun _ -> power) ~windows:10 ~window_s:1.0e-5;
  let peaks = Simulator.peak_history sim in
  Alcotest.(check int) "ten samples" 10 (List.length peaks);
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b +. 1e-9 && monotone rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "heating monotone" true (monotone peaks)

let test_metrics_known_field () =
  let temps = Array.make n 320.0 in
  temps.(0) <- 330.0;
  let s = Metrics.summarize layout temps in
  Alcotest.(check (float 1e-9)) "peak" 330.0 s.Metrics.peak_k;
  Alcotest.(check (float 1e-9)) "min" 320.0 s.Metrics.min_k;
  Alcotest.(check (float 1e-9)) "range" 10.0 s.Metrics.range_k;
  Alcotest.(check (float 1e-9)) "gradient at hotspot" 10.0
    s.Metrics.max_neighbor_gradient_k;
  Alcotest.(check int) "one hotspot" 1 s.Metrics.hotspot_cells;
  Alcotest.(check int) "peak cell" 0 (Metrics.peak_cell temps)

let test_metrics_uniform_field () =
  let temps = Array.make n 321.5 in
  let s = Metrics.summarize layout temps in
  Alcotest.(check (float 1e-9)) "stddev 0" 0.0 s.Metrics.stddev_k;
  Alcotest.(check (float 1e-9)) "gradient 0" 0.0 s.Metrics.max_neighbor_gradient_k;
  Alcotest.(check int) "no hotspots" 0 s.Metrics.hotspot_cells

let test_heatmap_render () =
  let temps = Array.make n 320.0 in
  temps.(0) <- 330.0;
  let s = Heatmap.render layout temps in
  let lines = String.split_on_char '\n' s in
  (* 4 rows + legend + trailing empty. *)
  Alcotest.(check int) "line count" 6 (List.length lines);
  (match lines with
   | first :: _ ->
     Alcotest.(check int) "row width" 4 (String.length first);
     Alcotest.(check char) "hot corner is @" '@' first.[0]
   | [] -> Alcotest.fail "no output");
  Alcotest.(check bool) "legend present" true
    (String.length s > 0
     && List.exists
          (fun l -> String.length l >= 3 && String.sub l 0 3 = "min")
          lines)

let test_heatmap_flat_field () =
  let temps = Array.make n 320.0 in
  let s = Heatmap.render layout temps in
  (* All cells rendered with the coldest ramp character. *)
  let first_line = List.nth (String.split_on_char '\n' s) 0 in
  String.iter (fun c -> Alcotest.(check char) "cold char" '.' c) first_line

let test_heatmap_side_by_side () =
  let temps = Array.make n 320.0 in
  let m = Heatmap.render layout temps in
  let joined = Heatmap.side_by_side ~titles:[ "a"; "b" ] [ m; m ] in
  let lines = String.split_on_char '\n' joined in
  (match lines with
   | title :: _ ->
     Alcotest.(check bool) "titles present" true
       (String.length title > 0 && title.[0] = 'a')
   | [] -> Alcotest.fail "no output");
  Alcotest.(check bool) "wider than single" true
    (String.length (List.nth lines 1) > 4)

let test_params_pp () =
  let s = Format.asprintf "%a" Params.pp params in
  Alcotest.(check bool) "mentions ambient" true (String.length s > 10)

(* --- Reliability --------------------------------------------------------- *)

let test_acceleration_factor () =
  let t_ref = 318.0 in
  Alcotest.(check (float 1e-9)) "unity at reference" 1.0
    (Reliability.acceleration_factor ~t_ref_k:t_ref t_ref);
  Alcotest.(check bool) "hotter ages faster" true
    (Reliability.acceleration_factor ~t_ref_k:t_ref 338.0 > 1.0);
  Alcotest.(check bool) "colder ages slower" true
    (Reliability.acceleration_factor ~t_ref_k:t_ref 308.0 < 1.0);
  (* +20 K roughly quadruples electromigration ageing at these
     temperatures. *)
  let af = Reliability.acceleration_factor ~t_ref_k:t_ref 338.0 in
  Alcotest.(check bool) "plausible magnitude" true (af > 2.0 && af < 10.0)

let test_reliability_assess () =
  let temps = Array.make n 318.0 in
  temps.(3) <- 348.0;
  let a = Reliability.assess layout temps in
  Alcotest.(check int) "weakest cell" 3 a.Reliability.weakest_cell;
  Alcotest.(check bool) "min below mean" true
    (a.Reliability.mttf_rel_min < a.Reliability.mttf_rel_mean);
  Alcotest.(check bool) "hot cell shortens life" true
    (a.Reliability.mttf_rel_min < 1.0);
  Alcotest.(check bool) "gradient stress positive" true
    (a.Reliability.gradient_stress > 0.0)

let test_reliability_uniform_map_is_reference () =
  let temps = Array.make n 318.0 in
  let a = Reliability.assess layout temps in
  Alcotest.(check (float 1e-9)) "uniform ambient = 1x" 1.0
    a.Reliability.mttf_rel_min;
  Alcotest.(check (float 1e-9)) "no stress" 0.0 a.Reliability.gradient_stress

let test_reliability_prefers_homogeneous () =
  (* Same total heat, spread vs concentrated: the spread map lives
     longer. *)
  let concentrated = Array.make n 318.0 in
  concentrated.(0) <- 318.0 +. 32.0;
  let spread = Array.make n (318.0 +. 2.0) in
  let ac = Reliability.assess layout concentrated in
  let asp = Reliability.assess layout spread in
  Alcotest.(check bool) "spread lives longer" true
    (asp.Reliability.mttf_rel_min > ac.Reliability.mttf_rel_min)

let test_turning_points () =
  Alcotest.(check (list (float 1e-9))) "extrema extracted"
    [ 1.0; 5.0; 2.0; 7.0 ]
    (Reliability.turning_points [ 1.0; 3.0; 5.0; 4.0; 2.0; 6.0; 7.0 ]);
  Alcotest.(check (list (float 1e-9))) "monotone collapses to ends"
    [ 1.0; 4.0 ]
    (Reliability.turning_points [ 1.0; 2.0; 3.0; 4.0 ]);
  Alcotest.(check (list (float 1e-9))) "plateau ignored" [ 2.0; 2.0 ]
    (Reliability.turning_points [ 2.0; 2.0; 2.0 ])

let test_cycling_counts_swings () =
  (* Two full heat/cool cycles of 10 K. *)
  let history = [ 320.0; 330.0; 320.0; 330.0; 320.0 ] in
  let c = Reliability.cycling history in
  Alcotest.(check int) "four half-cycles" 4 c.Reliability.half_cycles;
  Alcotest.(check (float 1e-9)) "swing amplitude" 10.0 c.Reliability.max_swing_k;
  (* Damage of a 10 K swing at q=3.5 is 10^3.5 per half cycle. *)
  Alcotest.(check (float 1.0)) "damage" (4.0 *. (10.0 ** 3.5))
    c.Reliability.damage_index

let test_cycling_threshold_filters_ripple () =
  let history = [ 320.0; 320.3; 320.0; 320.3; 320.0 ] in
  let c = Reliability.cycling ~min_swing_k:0.5 history in
  Alcotest.(check int) "ripple ignored" 0 c.Reliability.half_cycles;
  Alcotest.(check (float 1e-9)) "no damage" 0.0 c.Reliability.damage_index

let test_cycling_bigger_swings_more_damage () =
  let small = Reliability.cycling [ 320.0; 325.0; 320.0 ] in
  let large = Reliability.cycling [ 320.0; 330.0; 320.0 ] in
  (* Coffin-Manson: doubling the swing multiplies damage by 2^3.5 ~ 11. *)
  Alcotest.(check bool) "superlinear damage" true
    (large.Reliability.damage_index > 10.0 *. small.Reliability.damage_index)

(* --- DTM ------------------------------------------------------------------ *)

let hot_power = Array.make n 2.0e-3

let test_dtm_no_throttle_when_cool () =
  let r =
    Dtm.run model
      { Dtm.trigger_k = 1000.0; throttle_factor = 0.5 }
      ~power_of_window:(fun _ -> hot_power)
      ~windows:20 ~window_s:1.0e-5
  in
  Alcotest.(check int) "never throttled" 0 r.Dtm.throttled_windows;
  Alcotest.(check (float 1e-9)) "no slowdown" 1.0 r.Dtm.slowdown

let test_dtm_throttles_when_hot () =
  let r =
    Dtm.run model
      { Dtm.trigger_k = 320.0; throttle_factor = 0.5 }
      ~power_of_window:(fun _ -> hot_power)
      ~windows:200 ~window_s:1.0e-5
  in
  Alcotest.(check bool) "throttled" true (r.Dtm.throttled_windows > 0);
  Alcotest.(check bool) "slowdown > 1" true (r.Dtm.slowdown > 1.0);
  (* The throttled run stays close to the trigger. *)
  let unthrottled =
    Dtm.run model
      { Dtm.trigger_k = 1000.0; throttle_factor = 0.5 }
      ~power_of_window:(fun _ -> hot_power)
      ~windows:200 ~window_s:1.0e-5
  in
  Alcotest.(check bool) "cooler than unthrottled" true
    (r.Dtm.peak_k < unthrottled.Dtm.peak_k)

let test_dtm_factor_one_disables () =
  let r =
    Dtm.run model
      { Dtm.trigger_k = 300.0; throttle_factor = 1.0 }
      ~power_of_window:(fun _ -> hot_power)
      ~windows:20 ~window_s:1.0e-5
  in
  Alcotest.(check (float 1e-9)) "factor 1 = no slowdown" 1.0 r.Dtm.slowdown

let test_dtm_multilevel_grades_throttling () =
  let run levels =
    Dtm.run_multilevel model ~levels
      ~power_of_window:(fun _ -> hot_power)
      ~windows:200 ~window_s:1.0e-5
  in
  let single = run [ (322.0, 0.5) ] in
  let graded = run [ (320.0, 0.8); (322.0, 0.5) ] in
  Alcotest.(check bool) "graded throttles" true
    (graded.Dtm.throttled_windows > 0);
  (* The graded policy starts braking earlier and ends cooler or equal. *)
  Alcotest.(check bool) "graded at least as cool" true
    (graded.Dtm.peak_k <= single.Dtm.peak_k +. 0.2)

let test_dtm_multilevel_validation () =
  Alcotest.(check bool) "empty levels rejected" true
    (match
       Dtm.run_multilevel model ~levels:[]
         ~power_of_window:(fun _ -> hot_power)
         ~windows:1 ~window_s:1.0e-5
     with
     | (_ : Dtm.result) -> false
     | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "bad factor rejected" true
    (match
       Dtm.run_multilevel model
         ~levels:[ (320.0, 1.5) ]
         ~power_of_window:(fun _ -> hot_power)
         ~windows:1 ~window_s:1.0e-5
     with
     | (_ : Dtm.result) -> false
     | exception Invalid_argument _ -> true)

let test_dtm_invalid_factor () =
  Alcotest.(check bool) "factor 0 rejected" true
    (match
       Dtm.run model
         { Dtm.trigger_k = 320.0; throttle_factor = 0.0 }
         ~power_of_window:(fun _ -> hot_power)
         ~windows:1 ~window_s:1.0e-5
     with
     | (_ : Dtm.result) -> false
     | exception Invalid_argument _ -> true)

let suite =
  let tc = Alcotest.test_case in
  [
    ( "thermal.rc-model",
      [
        tc "stability bound" `Quick test_stability_bound_positive;
        tc "zero power = ambient" `Quick test_steady_zero_power_is_ambient;
        tc "uniform power = uniform temp" `Quick test_steady_uniform_power_uniform_temp;
        tc "point source decays" `Quick test_steady_point_source_decays;
        tc "superposition" `Quick test_steady_superposition;
        tc "derivative signs" `Quick test_derivative_signs;
        tc "leakage vs temperature" `Quick test_leakage_increases_with_temp;
      ] );
    ( "thermal.simulator",
      [
        tc "transient reaches steady state" `Quick test_simulator_converges_to_steady;
        tc "reset" `Quick test_simulator_reset;
        tc "peak history" `Quick test_simulator_peak_history_monotone_under_constant_power;
      ] );
    ( "thermal.metrics",
      [
        tc "known field" `Quick test_metrics_known_field;
        tc "uniform field" `Quick test_metrics_uniform_field;
      ] );
    ( "thermal.heatmap",
      [
        tc "render" `Quick test_heatmap_render;
        tc "flat field" `Quick test_heatmap_flat_field;
        tc "side by side" `Quick test_heatmap_side_by_side;
        tc "params pp" `Quick test_params_pp;
      ] );
    ( "thermal.reliability",
      [
        tc "acceleration factor" `Quick test_acceleration_factor;
        tc "assessment" `Quick test_reliability_assess;
        tc "uniform reference" `Quick test_reliability_uniform_map_is_reference;
        tc "prefers homogeneous" `Quick test_reliability_prefers_homogeneous;
        tc "turning points" `Quick test_turning_points;
        tc "cycling counts swings" `Quick test_cycling_counts_swings;
        tc "cycling threshold" `Quick test_cycling_threshold_filters_ripple;
        tc "cycling superlinear" `Quick test_cycling_bigger_swings_more_damage;
      ] );
    ( "thermal.dtm",
      [
        tc "no throttle when cool" `Quick test_dtm_no_throttle_when_cool;
        tc "throttles when hot" `Quick test_dtm_throttles_when_hot;
        tc "factor 1 disables" `Quick test_dtm_factor_one_disables;
        tc "invalid factor" `Quick test_dtm_invalid_factor;
        tc "multilevel grades" `Quick test_dtm_multilevel_grades_throttling;
        tc "multilevel validation" `Quick test_dtm_multilevel_validation;
      ] );
  ]
