open Tdfa_ir

let bundles_of_block ~width (b : Block.t) =
  assert (width >= 1);
  let body = b.Block.body in
  let n = Array.length body in
  if n = 0 then []
  else begin
    let preds = Deps.block_preds body in
    let issued = Array.make n false in
    let bundles = ref [] in
    let remaining = ref n in
    while !remaining > 0 do
      (* Ready: all predecessors issued in *earlier* bundles. *)
      let ready =
        List.filter
          (fun j ->
            (not issued.(j)) && List.for_all (fun i -> issued.(i)) preds.(j))
          (List.init n Fun.id)
      in
      (match ready with
       | [] -> assert false  (* the DAG is acyclic *)
       | _ :: _ ->
         let take = List.filteri (fun k _ -> k < width) ready in
         List.iter (fun j -> issued.(j) <- true) take;
         remaining := !remaining - List.length take;
         bundles := List.map (fun j -> body.(j)) take :: !bundles)
    done;
    List.rev !bundles
  end

let schedule_func ~width (f : Func.t) =
  List.map
    (fun (b : Block.t) -> (b.Block.label, bundles_of_block ~width b))
    f.Func.blocks

let bundle_count scheduled =
  List.fold_left (fun acc (_, bs) -> acc + List.length bs) 0 scheduled

let utilization ~width scheduled =
  let slots = width * bundle_count scheduled in
  let filled =
    List.fold_left
      (fun acc (_, bs) ->
        acc + List.fold_left (fun a b -> a + List.length b) 0 bs)
      0 scheduled
  in
  if slots = 0 then 1.0 else float_of_int filled /. float_of_int slots
