open Tdfa_dataflow
open Tdfa_thermal

let fu_power (m : Machine.t) ~block_weight bound =
  let width = m.Machine.width in
  let energy = Array.make width 0.0 in
  let cycles = ref 0.0 in
  List.iter
    (fun (label, bundles) ->
      let w = block_weight label in
      List.iter
        (fun bundle ->
          cycles := !cycles +. w;
          List.iter
            (fun (_, fu) ->
              energy.(fu) <- energy.(fu) +. (w *. m.Machine.op_energy_j))
            bundle)
        bundles)
    bound;
  let time_s = Float.max 1.0 !cycles /. m.Machine.params.Params.clock_hz in
  Array.map (fun e -> e /. time_s) energy

let steady_map m ~block_weight bound =
  let model = Machine.model m in
  let power = fu_power m ~block_weight bound in
  let n = Rc_model.num_nodes model in
  let with_leak temps =
    let leak = Rc_model.leakage_power model ~temps in
    Array.mapi (fun i p -> p +. leak.(i)) power
  in
  let ambient = m.Machine.params.Params.ambient_k in
  let first = Rc_model.steady_state model ~power:(with_leak (Array.make n ambient)) in
  Rc_model.steady_state model ~power:(with_leak first)

let evaluate m func policy =
  let loops = Loops.analyze func in
  let block_weight l = Loops.frequency loops l in
  let scheduled = Bundler.schedule_func ~width:m.Machine.width func in
  let bound = Binding.bind m policy ~block_weight scheduled in
  let temps = steady_map m ~block_weight bound in
  (temps, Metrics.summarize m.Machine.fu_layout temps)
