(** Binding of bundle operations to functional units — the knob of the
    paper's reference [4]. All policies respect the slot constraint (one
    op per FU per bundle); they differ only in *which* FU runs each op,
    which is invisible to performance but decisive for the FU thermal
    map. *)

open Tdfa_ir

type policy =
  | Fixed  (** fill FU 0, 1, 2, ... every bundle — the hot-spot baseline *)
  | Round_robin  (** rotate the starting FU between bundles *)
  | Coolest
      (** assign each op to the FU with the least accumulated (frequency-
          weighted) energy — the temperature-aware binder *)

val name : policy -> string
val all : policy list

val bind :
  Machine.t ->
  policy ->
  block_weight:(Label.t -> float) ->
  (Label.t * Instr.t list list) list ->
  (Label.t * (Instr.t * int) list list) list
(** Decorate every operation with its FU index (0 .. width-1); within a
    bundle all FU indices are distinct. *)

val valid : Machine.t -> (Label.t * (Instr.t * int) list list) list -> bool
(** Slot-constraint check, for tests. *)
