(** Greedy list scheduling of block bodies into VLIW bundles of at most
    [width] operations, respecting intra-block data dependences. NOPs are
    implicit (a bundle may be partially filled). *)

open Tdfa_ir

val bundles_of_block : width:int -> Block.t -> Instr.t list list
(** Bundles in issue order; each holds 1..width instructions whose
    dependences are satisfied by earlier bundles. Concatenating the
    bundles is a valid sequential schedule of the block. *)

val schedule_func : width:int -> Func.t -> (Label.t * Instr.t list list) list
(** Bundle every block, in block order. *)

val bundle_count : (Label.t * Instr.t list list) list -> int
val utilization : width:int -> (Label.t * Instr.t list list) list -> float
(** Filled slots over issued slots, in (0, 1]. *)
