(** Thermal evaluation of a bound VLIW schedule: frequency-weighted
    per-FU average power, solved to a steady-state temperature map of the
    FU array. *)

open Tdfa_ir

val fu_power :
  Machine.t ->
  block_weight:(Label.t -> float) ->
  (Label.t * (Instr.t * int) list list) list ->
  float array
(** Average dynamic power per FU over one estimated program run
    (1 cycle per bundle). *)

val steady_map :
  Machine.t ->
  block_weight:(Label.t -> float) ->
  (Label.t * (Instr.t * int) list list) list ->
  float array
(** Steady FU temperatures (leakage feedback included). *)

val evaluate :
  Machine.t ->
  Func.t ->
  Binding.policy ->
  float array * Tdfa_thermal.Metrics.summary
(** Bundle, bind and thermally evaluate a whole function in one call. *)
