
type policy = Fixed | Round_robin | Coolest

let name = function
  | Fixed -> "fixed"
  | Round_robin -> "round-robin"
  | Coolest -> "coolest"

let all = [ Fixed; Round_robin; Coolest ]

let bind (m : Machine.t) policy ~block_weight scheduled =
  let width = m.Machine.width in
  let rotation = ref 0 in
  let accumulated = Array.make width 0.0 in
  let bind_bundle weight ops =
    let k = List.length ops in
    assert (k <= width);
    match policy with
    | Fixed -> List.mapi (fun i op -> (op, i)) ops
    | Round_robin ->
      let start = !rotation in
      rotation := (!rotation + k) mod width;
      List.mapi (fun i op -> (op, (start + i) mod width)) ops
    | Coolest ->
      let used = Array.make width false in
      List.map
        (fun op ->
          (* Coolest free FU; deterministic tie-break on the index. *)
          let best = ref (-1) in
          for fu = width - 1 downto 0 do
            if
              (not used.(fu))
              && (!best < 0 || accumulated.(fu) <= accumulated.(!best))
            then best := fu
          done;
          used.(!best) <- true;
          accumulated.(!best) <-
            accumulated.(!best) +. (weight *. m.Machine.op_energy_j);
          (op, !best))
        ops
  in
  List.map
    (fun (label, bundles) ->
      (label, List.map (bind_bundle (block_weight label)) bundles))
    scheduled

let valid (m : Machine.t) bound =
  List.for_all
    (fun (_, bundles) ->
      List.for_all
        (fun bundle ->
          let fus = List.map snd bundle in
          List.length fus = List.length (List.sort_uniq Int.compare fus)
          && List.for_all (fun fu -> fu >= 0 && fu < m.Machine.width) fus)
        bundles)
    bound
