(** VLIW machine model: [width] identical functional units (FUs) laid out
    in a row, each an RC thermal node. This reproduces the substrate of
    the paper's reference [4] (Schafer et al., temperature-aware
    compilation for VLIW processors): thermal gradients across the FU
    array driven by how the compiler binds operations to slots. *)

open Tdfa_floorplan
open Tdfa_thermal

type t = private {
  width : int;
  fu_layout : Layout.t;  (** 1 x width grid of FU tiles *)
  op_energy_j : float;  (** dynamic energy per operation issue *)
  params : Params.t;  (** RC parameters of an FU tile *)
}

val make : ?op_energy_j:float -> ?params:Params.t -> width:int -> unit -> t
(** Defaults: 25 pJ per operation; FU-scale RC parameters (tiles are two
    orders of magnitude larger than register cells).
    @raise Invalid_argument when [width < 1]. *)

val model : t -> Rc_model.t
