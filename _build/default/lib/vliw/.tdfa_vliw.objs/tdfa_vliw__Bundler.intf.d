lib/vliw/bundler.mli: Block Func Instr Label Tdfa_ir
