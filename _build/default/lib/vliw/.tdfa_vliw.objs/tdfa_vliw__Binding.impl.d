lib/vliw/binding.ml: Array Int List Machine
