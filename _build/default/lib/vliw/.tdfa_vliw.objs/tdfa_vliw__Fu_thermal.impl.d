lib/vliw/fu_thermal.ml: Array Binding Bundler Float List Loops Machine Metrics Params Rc_model Tdfa_dataflow Tdfa_thermal
