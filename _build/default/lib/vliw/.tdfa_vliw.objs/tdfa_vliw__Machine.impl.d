lib/vliw/machine.ml: Layout Params Rc_model Tdfa_floorplan Tdfa_thermal
