lib/vliw/binding.mli: Instr Label Machine Tdfa_ir
