lib/vliw/bundler.ml: Array Block Deps Fun Func List Tdfa_ir
