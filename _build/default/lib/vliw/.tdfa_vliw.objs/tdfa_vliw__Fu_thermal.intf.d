lib/vliw/fu_thermal.mli: Binding Func Instr Label Machine Tdfa_ir Tdfa_thermal
