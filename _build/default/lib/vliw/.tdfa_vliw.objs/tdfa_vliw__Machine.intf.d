lib/vliw/machine.mli: Layout Params Rc_model Tdfa_floorplan Tdfa_thermal
