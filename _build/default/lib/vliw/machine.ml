open Tdfa_floorplan
open Tdfa_thermal

type t = {
  width : int;
  fu_layout : Layout.t;
  op_energy_j : float;
  params : Params.t;
}

(* FU tiles are ~100 um on a side: conductances and capacitance scale
   with the tile footprint relative to a register cell. *)
let fu_params =
  {
    Params.default with
    Params.lateral_conductance_w_per_k = 2.0e-3;
    vertical_conductance_w_per_k = 5.0e-3;
    cell_capacitance_j_per_k = 1.5e-6;
    leakage_w = 2.0e-3;
  }

let make ?(op_energy_j = 25.0e-12) ?(params = fu_params) ~width () =
  if width < 1 then invalid_arg "Machine.make: width < 1";
  {
    width;
    fu_layout =
      Layout.make ~cell_width_um:100.0 ~cell_height_um:100.0 ~rows:1
        ~cols:width ();
    op_energy_j;
    params;
  }

let model t = Rc_model.build t.fu_layout t.params
