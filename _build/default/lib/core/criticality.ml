open Tdfa_ir
open Tdfa_regalloc

type ranked = { var : Var.t; score : float; hottest_point_k : float }

(* Fold over every (variable, accessed cell, site) triple of the
   function. *)
let fold_accesses (func : Func.t) assignment f init =
  let acc = ref init in
  Func.iter_instrs
    (fun label index i ->
      let vars =
        (match Instr.def i with Some d -> [ d ] | None -> [])
        @ Instr.uses i
      in
      List.iter
        (fun v ->
          match Assignment.cell_of_var assignment v with
          | Some cell -> acc := f !acc v cell label index
          | None -> ())
        vars)
    func;
  !acc

let rank (cfg : Transfer.config) (info : Analysis.info) func assignment =
  let peak = Analysis.peak_map info in
  let ambient = (Transfer.fresh_state cfg |> Thermal_state.peak) in
  let scores = Var.Tbl.create 64 in
  let hottest = Var.Tbl.create 64 in
  ignore
    (fold_accesses func assignment
       (fun () v cell label _index ->
         let point = Thermal_state.point_of_cell peak cell in
         let temp = Thermal_state.get peak point in
         let excess = Float.max 0.0 (temp -. ambient) in
         let freq = cfg.Transfer.block_frequency label in
         let cur =
           match Var.Tbl.find_opt scores v with Some s -> s | None -> 0.0
         in
         Var.Tbl.replace scores v (cur +. (freq *. excess));
         let hv =
           match Var.Tbl.find_opt hottest v with Some h -> h | None -> neg_infinity
         in
         Var.Tbl.replace hottest v (Float.max hv temp))
       ());
  let ranked =
    Var.Tbl.fold
      (fun v score acc ->
        {
          var = v;
          score;
          hottest_point_k =
            (match Var.Tbl.find_opt hottest v with
             | Some h -> h
             | None -> ambient);
        }
        :: acc)
      scores []
  in
  List.sort
    (fun a b ->
      match Float.compare b.score a.score with
      | 0 -> Var.compare a.var b.var
      | c -> c)
    ranked

let critical_vars ?(margin_k = 1.0) cfg info func assignment =
  let peak = Analysis.peak_map info in
  let mean = Thermal_state.mean peak in
  let ranked = rank cfg info func assignment in
  List.filter_map
    (fun r -> if r.hottest_point_k > mean +. margin_k then Some r.var else None)
    ranked
