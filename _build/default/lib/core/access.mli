(** Mapping from instructions to the register-file cells they touch, given
    a register assignment (post-allocation) or a predictive placement
    (pre-allocation). Spilled variables have no cell and cause no RF
    access.

    An event carries a [weight] (equivalent access count): ordinary
    instruction operands weigh 1.0; call sites use fractional weights to
    inject the callee's aggregated access profile (see {!Interproc}). *)

open Tdfa_ir
open Tdfa_regalloc

type kind = Read | Write

type event = { cell : int; kind : kind; weight : float }

val event : ?weight:float -> int -> kind -> event

val of_instr : Assignment.t -> Instr.t -> event list
(** One unit-weight event per register access, reads in operand order then
    the write. *)

val of_terminator : Assignment.t -> Block.terminator -> event list

val energy_j : read_energy_j:float -> write_energy_j:float -> event list -> float
(** Total dynamic energy of one execution of the access list. *)
