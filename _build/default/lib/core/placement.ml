open Tdfa_ir
open Tdfa_dataflow
open Tdfa_floorplan
open Tdfa_regalloc

let predict ?(regions_rows = 2) ?(regions_cols = 2) (func : Func.t) layout =
  let regions = Region.grid layout ~rows:regions_rows ~cols:regions_cols in
  let ud = Use_def.build func in
  let loops = Loops.analyze func in
  let weight v = Use_def.weighted_access_count ud loops v in
  let vars =
    Var.Set.elements (Func.all_vars func)
    |> List.sort (fun a b ->
           match Float.compare (weight b) (weight a) with
           | 0 -> Var.compare a b
           | c -> c)
  in
  (* Hottest variables first, dealt round-robin across regions; inside a
     region, cells are used in centre-out order and reused cyclically
     under pressure. *)
  let num_regions = Region.num_regions regions in
  let region_cells =
    Array.init num_regions (fun r ->
        let centroid = Region.centroid_cell regions r in
        let cells = Region.cells_of_region regions r in
        let dist c = Layout.manhattan layout c centroid in
        Array.of_list
          (List.sort
             (fun a b ->
               match Int.compare (dist a) (dist b) with
               | 0 -> Int.compare a b
               | c -> c)
             cells))
  in
  let cursor = Array.make num_regions 0 in
  let assignment = ref Assignment.empty in
  List.iteri
    (fun i v ->
      let r = i mod num_regions in
      let cells = region_cells.(r) in
      let cell = cells.(cursor.(r) mod Array.length cells) in
      cursor.(r) <- cursor.(r) + 1;
      assignment := Assignment.add !assignment v cell)
    vars;
  !assignment

let config_pre_ra ?params ?granularity ?analysis_dt_s ~layout func =
  let assignment = predict func layout in
  Setup.config_of_assignment ?params ?granularity ?analysis_dt_s ~layout func
    assignment
