(** Comparison between the analysis' predicted thermal map and the
    ground-truth RC simulation — the fidelity-vs-granularity trade-off of
    §3 (experiments E5 and E7). Both fields are per register cell. *)

type report = {
  mae_k : float;  (** mean absolute error *)
  rmse_k : float;
  peak_error_k : float;  (** |predicted peak - measured peak| *)
  peak_cell_match : bool;  (** same hottest cell *)
  spearman : float;
      (** rank correlation of cell temperatures: 1.0 = the prediction
          orders hot spots exactly like the measurement *)
}

val compare_fields : predicted:float array -> measured:float array -> report
(** @raise Invalid_argument on length mismatch or empty fields. *)

val spearman : float array -> float array -> float
(** Exposed for tests; ties receive their average rank. *)

val pp_report : Format.formatter -> report -> unit
