(** Predictive (pre-register-allocation) placement model.

    §4's "more ambitious possibility": run the analysis before register
    allocation, when "there is no information about the layout of the RF
    and the placement of registers". We model the unknown future
    assignment by ranking variables by estimated access weight and
    spreading them round-robin across floorplan regions — the stated
    heuristic of assigning likely-hot variables "to registers in disparate
    regions of the RF". The accuracy lost relative to the real assignment
    is exactly what experiment E7 measures. *)

open Tdfa_ir
open Tdfa_floorplan
open Tdfa_regalloc

val predict :
  ?regions_rows:int ->
  ?regions_cols:int ->
  Func.t ->
  Layout.t ->
  Assignment.t
(** Virtual placement of every variable of [func] (defaults: 2 x 2
    regions). Variables beyond the RF capacity share cells round-robin,
    mimicking the reuse a real allocator would create. *)

val config_pre_ra :
  ?params:Tdfa_thermal.Params.t ->
  ?granularity:int ->
  ?analysis_dt_s:float ->
  layout:Layout.t ->
  Func.t ->
  Transfer.config
(** Transfer configuration using the predictive placement. *)
