type report = {
  mae_k : float;
  rmse_k : float;
  peak_error_k : float;
  peak_cell_match : bool;
  spearman : float;
}

(* Average ranks, with ties sharing the mean of their positions. *)
let ranks xs =
  let n = Array.length xs in
  let order = Array.init n Fun.id in
  Array.sort (fun i j -> Float.compare xs.(i) xs.(j)) order;
  let r = Array.make n 0.0 in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while
      !j + 1 < n && Float.equal xs.(order.(!j + 1)) xs.(order.(!i))
    do
      incr j
    done;
    let avg_rank = float_of_int (!i + !j) /. 2.0 in
    for k = !i to !j do
      r.(order.(k)) <- avg_rank
    done;
    i := !j + 1
  done;
  r

let spearman a b =
  assert (Array.length a = Array.length b && Array.length a > 0);
  let ra = ranks a and rb = ranks b in
  let n = float_of_int (Array.length a) in
  let mean xs = Array.fold_left ( +. ) 0.0 xs /. n in
  let ma = mean ra and mb = mean rb in
  let cov = ref 0.0 and va = ref 0.0 and vb = ref 0.0 in
  Array.iteri
    (fun i x ->
      let da = x -. ma and db = rb.(i) -. mb in
      cov := !cov +. (da *. db);
      va := !va +. (da *. da);
      vb := !vb +. (db *. db))
    ra;
  if !va < 1e-12 || !vb < 1e-12 then 0.0
  else !cov /. sqrt (!va *. !vb)

let argmax xs =
  let best = ref 0 in
  Array.iteri (fun i x -> if x > xs.(!best) then best := i) xs;
  !best

let compare_fields ~predicted ~measured =
  let n = Array.length predicted in
  if n = 0 || n <> Array.length measured then
    invalid_arg "Accuracy.compare_fields: field length mismatch";
  let abs_errors = Array.mapi (fun i p -> Float.abs (p -. measured.(i))) predicted in
  let mae = Array.fold_left ( +. ) 0.0 abs_errors /. float_of_int n in
  let mse =
    Array.fold_left (fun acc e -> acc +. (e *. e)) 0.0 abs_errors /. float_of_int n
  in
  let peak_of xs = Array.fold_left Float.max neg_infinity xs in
  {
    mae_k = mae;
    rmse_k = sqrt mse;
    peak_error_k = Float.abs (peak_of predicted -. peak_of measured);
    peak_cell_match = argmax predicted = argmax measured;
    spearman = spearman predicted measured;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "mae=%.3fK rmse=%.3fK peak_err=%.3fK peak_cell_match=%b spearman=%.3f"
    r.mae_k r.rmse_k r.peak_error_k r.peak_cell_match r.spearman
