lib/core/placement.mli: Assignment Func Layout Tdfa_floorplan Tdfa_ir Tdfa_regalloc Tdfa_thermal Transfer
