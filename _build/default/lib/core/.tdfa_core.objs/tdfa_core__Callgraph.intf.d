lib/core/callgraph.mli: Label Program Tdfa_ir
