lib/core/interproc.ml: Access Analysis Array Block Callgraph Float Func Hashtbl Instr List Loops Params Program Tdfa_dataflow Tdfa_floorplan Tdfa_ir Tdfa_thermal Thermal_state Transfer
