lib/core/setup.mli: Analysis Assignment Func Layout Loops Params Tdfa_dataflow Tdfa_floorplan Tdfa_ir Tdfa_regalloc Tdfa_thermal Transfer
