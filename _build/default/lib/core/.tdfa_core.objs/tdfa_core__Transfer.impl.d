lib/core/transfer.ml: Access Block Float Instr Label Layout List Params Tdfa_floorplan Tdfa_ir Tdfa_thermal Thermal_state
