lib/core/access.mli: Assignment Block Instr Tdfa_ir Tdfa_regalloc
