lib/core/setup.ml: Access Analysis Block Float Func List Loops Tdfa_dataflow Tdfa_ir Transfer
