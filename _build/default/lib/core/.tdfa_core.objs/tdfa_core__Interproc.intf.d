lib/core/interproc.mli: Analysis Assignment Func Layout Params Program Tdfa_floorplan Tdfa_ir Tdfa_regalloc Tdfa_thermal Thermal_state
