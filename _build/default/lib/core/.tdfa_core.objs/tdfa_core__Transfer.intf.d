lib/core/transfer.mli: Access Block Instr Label Layout Params Tdfa_floorplan Tdfa_ir Tdfa_thermal Thermal_state
