lib/core/callgraph.ml: Func Hashtbl Instr Label List Program String Tdfa_ir
