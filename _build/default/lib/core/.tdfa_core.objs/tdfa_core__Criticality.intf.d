lib/core/criticality.mli: Analysis Assignment Func Tdfa_ir Tdfa_regalloc Transfer Var
