lib/core/thermal_state.mli: Layout Tdfa_floorplan
