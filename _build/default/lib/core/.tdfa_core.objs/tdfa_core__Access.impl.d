lib/core/access.ml: Assignment Block Instr List Tdfa_ir Tdfa_regalloc
