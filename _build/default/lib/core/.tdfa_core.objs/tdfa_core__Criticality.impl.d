lib/core/criticality.ml: Analysis Assignment Float Func Instr List Tdfa_ir Tdfa_regalloc Thermal_state Transfer Var
