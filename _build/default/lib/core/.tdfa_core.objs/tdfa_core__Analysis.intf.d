lib/core/analysis.mli: Func Hashtbl Label Tdfa_ir Thermal_state Transfer
