lib/core/accuracy.ml: Array Float Format Fun
