lib/core/thermal_state.ml: Array Float Layout List Tdfa_floorplan
