lib/core/placement.ml: Array Assignment Float Func Int Layout List Loops Region Setup Tdfa_dataflow Tdfa_floorplan Tdfa_ir Tdfa_regalloc Use_def Var
