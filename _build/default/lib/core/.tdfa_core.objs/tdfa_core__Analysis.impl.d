lib/core/analysis.ml: Array Block Float Func Hashtbl Label List Tdfa_ir Thermal_state Transfer
