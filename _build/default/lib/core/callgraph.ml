open Tdfa_ir

type t = {
  program : Program.t;
  edges : (string, string list) Hashtbl.t;  (* caller -> callees *)
  sites : (string, (Label.t * int) list) Hashtbl.t;
}

let build program =
  let edges = Hashtbl.create 8 in
  let sites = Hashtbl.create 8 in
  List.iter
    (fun (f : Func.t) ->
      let callees = ref [] in
      let my_sites = ref [] in
      Func.iter_instrs
        (fun label index i ->
          match i with
          | Instr.Call (_, callee, _) ->
            if not (List.mem callee !callees) then callees := callee :: !callees;
            my_sites := (label, index) :: !my_sites
          | Instr.Const _ | Instr.Unop _ | Instr.Binop _ | Instr.Load _
          | Instr.Store _ | Instr.Nop ->
            ())
        f;
      Hashtbl.replace edges f.Func.name (List.rev !callees);
      Hashtbl.replace sites f.Func.name (List.rev !my_sites))
    (Program.funcs program);
  { program; edges; sites }

let callees t name =
  match Hashtbl.find_opt t.edges name with Some l -> l | None -> []

let callers t name =
  Hashtbl.fold
    (fun caller cs acc -> if List.mem name cs then caller :: acc else acc)
    t.edges []
  |> List.sort String.compare

let call_sites t name =
  match Hashtbl.find_opt t.sites name with Some l -> l | None -> []

(* DFS with colouring; a back edge means recursion. *)
let is_recursive t =
  let color = Hashtbl.create 8 in  (* name -> `Gray | `Black *)
  let cyclic = ref false in
  let rec visit name =
    match Hashtbl.find_opt color name with
    | Some `Gray -> cyclic := true
    | Some `Black -> ()
    | None ->
      Hashtbl.replace color name `Gray;
      List.iter
        (fun callee ->
          if Program.find t.program callee <> None then visit callee)
        (callees t name);
      Hashtbl.replace color name `Black
  in
  List.iter (fun (f : Func.t) -> visit f.Func.name) (Program.funcs t.program);
  !cyclic

let topological_order t =
  if is_recursive t then invalid_arg "Callgraph.topological_order: recursive";
  let visited = Hashtbl.create 8 in
  let order = ref [] in
  let rec visit name =
    if not (Hashtbl.mem visited name) then begin
      Hashtbl.replace visited name ();
      List.iter
        (fun callee ->
          if Program.find t.program callee <> None then visit callee)
        (callees t name);
      order := name :: !order
    end
  in
  List.iter (fun (f : Func.t) -> visit f.Func.name) (Program.funcs t.program);
  (* Post-order pushes to the front, so the head is the last-finished
     root; reversing yields leaf-first. *)
  List.rev !order
