open Tdfa_ir
open Tdfa_floorplan
open Tdfa_thermal

type config = {
  params : Params.t;
  layout : Layout.t;
  granularity : int;
  analysis_dt_s : float;
  block_frequency : Label.t -> float;
  max_frequency : float;
  accesses_of_instr : Label.t -> int -> Instr.t -> Access.event list;
  accesses_of_term : Label.t -> Block.terminator -> Access.event list;
}

let default_analysis_dt_s = 2.0e-6

let make_config ?(params = Params.default) ?(granularity = 1)
    ?(analysis_dt_s = default_analysis_dt_s) ?(max_frequency = 1.0) ~layout
    ~block_frequency ~accesses_of_instr ~accesses_of_term () =
  {
    params;
    layout;
    granularity;
    analysis_dt_s;
    block_frequency;
    max_frequency = Float.max 1.0 max_frequency;
    accesses_of_instr;
    accesses_of_term;
  }

(* Point-level coefficients, derived analytically from the cell-level RC
   parameters: a g x g tile has capacitance g^2*C, exchanges heat with a
   neighbouring tile through g parallel cell boundaries, and sinks through
   g^2 vertical paths. *)
let point_capacitance cfg =
  let g = float_of_int cfg.granularity in
  cfg.params.Params.cell_capacitance_j_per_k *. g *. g

let diffusion_coeff cfg =
  let g = float_of_int cfg.granularity in
  cfg.params.Params.lateral_conductance_w_per_k *. g *. cfg.analysis_dt_s
  /. point_capacitance cfg

let cooling_coeff cfg =
  let g = float_of_int cfg.granularity in
  cfg.params.Params.vertical_conductance_w_per_k *. g *. g *. cfg.analysis_dt_s
  /. point_capacitance cfg

let is_stable cfg = (4.0 *. diffusion_coeff cfg) +. cooling_coeff cfg < 1.0

let fresh_state cfg =
  Thermal_state.create cfg.layout ~granularity:cfg.granularity
    ~ambient_k:cfg.params.Params.ambient_k

(* One virtual time step: heating by the given access list (scaled by the
   block's execution frequency), leakage, diffusion, cooling. *)
let apply cfg frequency accesses state =
  let p = cfg.params in
  let state = Thermal_state.copy state in
  let c_point = point_capacitance cfg in
  (* Heating: the instruction's instantaneous access power (one access per
     cycle while its code executes), duty-cycled by the block's relative
     execution frequency. At the fixpoint, states around the hottest loop
     therefore settle at the physical steady state of executing that
     loop, while rarely-executed code heats proportionally less. *)
  let duty = Float.min 1.0 (frequency /. cfg.max_frequency) in
  List.iter
    (fun (e : Access.event) ->
      let energy =
        match e.Access.kind with
        | Access.Read -> p.Params.read_energy_j
        | Access.Write -> p.Params.write_energy_j
      in
      let power = energy *. e.Access.weight *. p.Params.clock_hz *. duty in
      let point = Thermal_state.point_of_cell state e.Access.cell in
      Thermal_state.set state point
        (Thermal_state.get state point +. (power *. cfg.analysis_dt_s /. c_point)))
    accesses;
  (* Leakage on every point (linearised, temperature-dependent). *)
  Thermal_state.map_points state (fun point t ->
      let cells = float_of_int (Thermal_state.cells_per_point state point) in
      let excess = Float.max 0.0 (t -. p.Params.ambient_k) in
      let leak =
        p.Params.leakage_w
        *. (1.0 +. (p.Params.leakage_temp_coeff *. excess))
        *. cells
      in
      t +. (leak *. cfg.analysis_dt_s /. c_point));
  (* Diffusion then cooling, both explicit. *)
  let lambda = diffusion_coeff cfg in
  let before = Thermal_state.copy state in
  Thermal_state.map_points state (fun point t ->
      let exchange =
        List.fold_left
          (fun acc q -> acc +. (Thermal_state.get before q -. t))
          0.0
          (Thermal_state.point_neighbors before point)
      in
      t +. (lambda *. exchange));
  let kappa = cooling_coeff cfg in
  Thermal_state.map_points state (fun _ t ->
      t -. (kappa *. (t -. p.Params.ambient_k)));
  state

let instr cfg label index i state =
  let accesses = cfg.accesses_of_instr label index i in
  apply cfg (cfg.block_frequency label) accesses state

let terminator cfg label term state =
  let accesses = cfg.accesses_of_term label term in
  apply cfg (cfg.block_frequency label) accesses state
