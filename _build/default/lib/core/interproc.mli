(** Whole-program (interprocedural) thermal analysis — the extension past
    §4's single-procedure presentation.

    Functions are processed leaf-first over the call graph. Each analysed
    callee is condensed into a {e summary}: its average register-file
    energy rate per cell and its estimated duration. A call site then
    injects the callee's profile as fractional-weight access events, so a
    caller's fixpoint accounts for the heat its callees generate without
    re-walking their bodies. Recursive programs are rejected. *)

open Tdfa_ir
open Tdfa_floorplan
open Tdfa_thermal
open Tdfa_regalloc

type summary = {
  energy_rate_j_per_cycle : float array;  (** per cell, callee + its callees *)
  cycles : float;  (** estimated cycles of one invocation *)
}

val summarize :
  ?params:Params.t ->
  layout:Layout.t ->
  callee_summary:(string -> summary option) ->
  Func.t ->
  Assignment.t ->
  summary
(** Loop-frequency-weighted access energy per cell, with nested call
    sites expanded through [callee_summary]. *)

type result = {
  order : string list;  (** leaf-first analysis order *)
  per_function : (string * Analysis.outcome) list;
  program_peak : Thermal_state.t;
      (** pointwise maximum over every function's predicted peak map *)
  summaries : (string * summary) list;
}

val run :
  ?params:Params.t ->
  ?granularity:int ->
  ?analysis_dt_s:float ->
  ?settings:Analysis.settings ->
  layout:Layout.t ->
  assignment_of:(Func.t -> Assignment.t) ->
  Program.t ->
  result
(** Analyse every function of the program with call-site summary
    injection. [assignment_of] supplies each function's register
    assignment (functions share the physical register file).
    @raise Invalid_argument on recursive programs. *)
