open Tdfa_ir
open Tdfa_regalloc

type kind = Read | Write

type event = { cell : int; kind : kind; weight : float }

let event ?(weight = 1.0) cell kind = { cell; kind; weight }

let of_vars assignment reads writes =
  let cells vars kind =
    List.filter_map
      (fun v ->
        match Assignment.cell_of_var assignment v with
        | Some cell -> Some { cell; kind; weight = 1.0 }
        | None -> None)
      vars
  in
  cells reads Read @ cells writes Write

let of_instr assignment i =
  let writes = match Instr.def i with Some d -> [ d ] | None -> [] in
  of_vars assignment (Instr.uses i) writes

let of_terminator assignment term =
  of_vars assignment (Block.term_uses term) []

let energy_j ~read_energy_j ~write_energy_j events =
  List.fold_left
    (fun acc e ->
      acc
      +. (e.weight
          *. match e.kind with Read -> read_energy_j | Write -> write_energy_j))
    0.0 events
