(** Call graph over a {!Tdfa_ir.Program}, for the interprocedural
    extension of the analysis (§4 describes the analysis "in the context
    of a single procedure"; whole-program propagation is the natural next
    step). *)

open Tdfa_ir

type t

val build : Program.t -> t

val callees : t -> string -> string list
(** Distinct callees of the function, in first-call order; unknown
    (external) names are included. *)

val callers : t -> string -> string list

val call_sites : t -> string -> (Label.t * int) list
(** Instruction positions in the given function that perform calls. *)

val is_recursive : t -> bool
(** Whether any call cycle exists (including self-recursion). *)

val topological_order : t -> string list
(** Callees before callers (leaf-first). Only defined functions appear.
    @raise Invalid_argument when the graph is recursive. *)
