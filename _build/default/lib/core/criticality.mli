(** Ranking of variables by their contribution to predicted hot spots.

    §4: "the goal would be to determine precisely which parts of the
    program are likely to exacerbate power density and thermal problems
    ... and to determine which variables are most likely to be involved".
    The score of a variable accumulates, over all its accesses, the
    execution frequency of the access site times the predicted excess
    temperature of the accessed thermal point. *)

open Tdfa_ir
open Tdfa_regalloc

type ranked = { var : Var.t; score : float; hottest_point_k : float }

val rank :
  Transfer.config -> Analysis.info -> Func.t -> Assignment.t -> ranked list
(** Descending by score; variables with no register cell score 0. *)

val critical_vars :
  ?margin_k:float ->
  Transfer.config ->
  Analysis.info ->
  Func.t ->
  Assignment.t ->
  Var.t list
(** Variables whose accesses touch a point hotter than the mean predicted
    temperature plus [margin_k] (default 1.0 K), hottest first — the
    candidates for spilling or splitting. *)
