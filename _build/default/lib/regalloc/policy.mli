(** Register assignment policies — which free cell to hand to the next
    variable. These are the three policies of Fig. 1 plus two
    thermally-motivated ones.

    A chooser is stateful (round-robin position, RNG, accumulated load for
    thermal spreading); create one per allocation run. *)

open Tdfa_floorplan

type t =
  | First_fit  (** lowest-index free register — Fig. 1(a) *)
  | Round_robin  (** next free register after the last one handed out *)
  | Random of int  (** uniformly random free register, seeded — Fig. 1(b) *)
  | Chessboard
      (** black squares first, then white — Fig. 1(c); degrades once more
          than half the file is needed *)
  | Thermal_spread
      (** pick the free cell farthest (weighted) from already-loaded
          cells, using the variables' estimated access weights *)
  | Bank_pack of int
      (** pack assignments into as few of [n] vertical banks as possible,
          so idle banks can be power-gated — §4's leakage-saving
          counterpoint to spreading *)
  | Measured of float array
      (** prefer the cells that a previous thermal simulation measured as
          coolest — one round of the feedback-driven framework the paper
          contrasts against (§1) *)

val name : t -> string
val all : t list
(** One of each, with a fixed seed for [Random] and 4 banks for
    [Bank_pack]. *)

val bank_of_cell : Tdfa_floorplan.Layout.t -> banks:int -> int -> int
(** The vertical bank (column stripe) a cell belongs to. *)

type chooser

val make_chooser : t -> Layout.t -> chooser

module Int_set : Set.S with type elt = int

val choose : chooser -> forbidden:Int_set.t -> weight:float -> int option
(** Pick a cell not in [forbidden] for a variable with the given estimated
    access weight; [None] when every cell is forbidden. The chooser
    records the pick for its future decisions. *)
