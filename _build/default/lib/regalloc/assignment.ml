open Tdfa_ir

type t = int Var.Map.t

let empty = Var.Map.empty
let add t v c = Var.Map.add v c t
let cell_of_var t v = Var.Map.find_opt v t
let bindings t = Var.Map.bindings t
let of_bindings l = List.fold_left (fun acc (v, c) -> Var.Map.add v c acc) empty l

let cells_in_use t =
  Var.Map.fold (fun _ c acc -> c :: acc) t []
  |> List.sort_uniq Int.compare

let size = Var.Map.cardinal

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (v, c) -> Format.fprintf ppf "%a -> r%d@ " Var.pp v c)
    (bindings t);
  Format.fprintf ppf "@]"
