open Tdfa_ir
open Tdfa_dataflow

type result = {
  func : Func.t;
  assignment : Assignment.t;
  spilled : Var.Set.t;
  rounds : int;
  max_pressure : int;
}

let default_weights func =
  let ud = Use_def.build func in
  let loops = Loops.analyze func in
  fun v -> Use_def.weighted_access_count ud loops v

let allocate ?(max_rounds = 16) ?weights func layout ~policy =
  let rec attempt func all_spilled round =
    if round > max_rounds then
      failwith
        (Printf.sprintf "Alloc.allocate: no colouring after %d spill rounds"
           max_rounds);
    let weights =
      match weights with Some w -> w | None -> default_weights func
    in
    let liveness = Liveness.analyze func in
    let graph = Interference.build func liveness in
    let outcome = Coloring.run graph layout ~policy ~weights in
    if Var.Set.is_empty outcome.Coloring.spilled then
      {
        func;
        assignment = outcome.Coloring.assignment;
        spilled = all_spilled;
        rounds = round;
        max_pressure = Liveness.max_pressure liveness;
      }
    else
      let func =
        Spill.rewrite
          ~slot_base:(Var.Set.cardinal all_spilled)
          func outcome.Coloring.spilled
      in
      attempt func (Var.Set.union all_spilled outcome.Coloring.spilled) (round + 1)
  in
  attempt func Var.Set.empty 1

let cell_of_var result v = Assignment.cell_of_var result.assignment v
