(** Register assignment: a finite map from variables to register-file cell
    indices, as produced by the allocator. *)

open Tdfa_ir

type t

val empty : t
val add : t -> Var.t -> int -> t
val cell_of_var : t -> Var.t -> int option
val bindings : t -> (Var.t * int) list
val of_bindings : (Var.t * int) list -> t
val cells_in_use : t -> int list
(** Distinct cells, ascending. *)

val size : t -> int
val pp : Format.formatter -> t -> unit
