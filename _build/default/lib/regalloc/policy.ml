open Tdfa_floorplan

type t =
  | First_fit
  | Round_robin
  | Random of int
  | Chessboard
  | Thermal_spread
  | Bank_pack of int
  | Measured of float array

let name = function
  | First_fit -> "first-fit"
  | Round_robin -> "round-robin"
  | Random _ -> "random"
  | Chessboard -> "chessboard"
  | Thermal_spread -> "thermal-spread"
  | Bank_pack _ -> "bank-pack"
  | Measured _ -> "measured"

let all =
  [ First_fit; Round_robin; Random 42; Chessboard; Thermal_spread; Bank_pack 4 ]

let bank_of_cell layout ~banks cell =
  let _, col = Layout.coord layout cell in
  col * banks / layout.Layout.cols

module Int_set = Set.Make (Int)

type state =
  | S_first_fit
  | S_round_robin of int ref
  | S_random of Random.State.t
  | S_ordered of int array
      (* fixed preference order: chessboard (black-first) and bank-pack
         (bank-major) reduce to this *)
  | S_thermal of float array  (* accumulated access weight per cell *)
  | S_measured of float array * float array
      (* normalised measured temperatures + accumulated load of the
         current round: feedback-guided assignment balances both *)

type chooser = { layout : Layout.t; state : state }

let make_chooser policy layout =
  let state =
    match policy with
    | First_fit -> S_first_fit
    | Round_robin -> S_round_robin (ref 0)
    | Random seed -> S_random (Random.State.make [| seed |])
    | Chessboard ->
      let cells = Array.of_list (Layout.cells layout) in
      let order i j =
        match
          Int.compare (Layout.chessboard_color layout i)
            (Layout.chessboard_color layout j)
        with
        | 0 -> Int.compare i j
        | c -> c
      in
      Array.sort order cells;
      S_ordered cells
    | Thermal_spread -> S_thermal (Array.make (Layout.num_cells layout) 0.0)
    | Bank_pack banks ->
      let cells = Array.of_list (Layout.cells layout) in
      let order i j =
        match
          Int.compare (bank_of_cell layout ~banks i) (bank_of_cell layout ~banks j)
        with
        | 0 -> Int.compare i j
        | c -> c
      in
      Array.sort order cells;
      S_ordered cells
    | Measured temps ->
      assert (Array.length temps = Layout.num_cells layout);
      let lo = Array.fold_left Float.min infinity temps in
      let hi = Array.fold_left Float.max neg_infinity temps in
      let span = Float.max 1e-9 (hi -. lo) in
      let normalised = Array.map (fun t -> (t -. lo) /. span) temps in
      S_measured (normalised, Array.make (Layout.num_cells layout) 0.0)
  in
  { layout; state }

let free_cells layout forbidden =
  List.filter (fun c -> not (Int_set.mem c forbidden)) (Layout.cells layout)

(* Free cell with the smallest cost; ties break on the lowest index. *)
let pick_min_cost layout forbidden cost =
  let best =
    List.fold_left
      (fun best c ->
        match best with
        | None -> Some (c, cost c)
        | Some (_, bc) ->
          let cc = cost c in
          if cc < bc -. 1e-12 then Some (c, cc) else best)
      None
      (free_cells layout forbidden)
  in
  Option.map fst best

let choose chooser ~forbidden ~weight =
  let layout = chooser.layout in
  match chooser.state with
  | S_first_fit -> (
    match free_cells layout forbidden with c :: _ -> Some c | [] -> None)
  | S_round_robin cursor -> (
    let n = Layout.num_cells layout in
    let rec scan k =
      if k >= n then None
      else
        let c = (!cursor + k) mod n in
        if Int_set.mem c forbidden then scan (k + 1)
        else begin
          cursor := (c + 1) mod n;
          Some c
        end
    in
    match scan 0 with Some c -> Some c | None -> None)
  | S_random rng -> (
    match free_cells layout forbidden with
    | [] -> None
    | free ->
      let arr = Array.of_list free in
      Some arr.(Random.State.int rng (Array.length arr)))
  | S_ordered order ->
    Array.fold_left
      (fun acc c ->
        match acc with
        | Some _ -> acc
        | None -> if Int_set.mem c forbidden then None else Some c)
      None order
  | S_thermal load -> (
    (* Cost of placing at [c]: proximity-weighted accumulated load.
       Lower is cooler. Deterministic tie-break on the index. *)
    let cost c =
      List.fold_left
        (fun acc other ->
          if load.(other) <= 0.0 then acc
          else
            let d = float_of_int (Layout.manhattan layout c other) in
            acc +. (load.(other) /. (1.0 +. d)))
        0.0 (Layout.cells layout)
    in
    match pick_min_cost layout forbidden cost with
    | Some c ->
      load.(c) <- load.(c) +. Float.max 1.0 weight;
      Some c
    | None -> None)
  | S_measured (temps, load) -> (
    (* Feedback round: avoid the cells the last simulation measured hot
       (and their vicinity — conduction makes neighbours of a hot spot
       poor choices too), while also spreading this round's own
       assignments. *)
    let cost c =
      let near measure other =
        if measure <= 0.0 then 0.0
        else
          let d = float_of_int (Layout.manhattan layout c other) in
          measure /. (1.0 +. d)
      in
      List.fold_left
        (fun acc other ->
          acc +. near load.(other) other +. near temps.(other) other)
        (2.0 *. temps.(c))
        (Layout.cells layout)
    in
    match pick_min_cost layout forbidden cost with
    | Some c ->
      load.(c) <- load.(c) +. 1.0;
      Some c
    | None -> None)
