open Tdfa_ir
open Tdfa_dataflow

type t = { adj : Var.Set.t Var.Tbl.t }

let add_node t v =
  if not (Var.Tbl.mem t.adj v) then Var.Tbl.replace t.adj v Var.Set.empty

let add_edge t a b =
  if not (Var.equal a b) then begin
    add_node t a;
    add_node t b;
    Var.Tbl.replace t.adj a (Var.Set.add b (Var.Tbl.find t.adj a));
    Var.Tbl.replace t.adj b (Var.Set.add a (Var.Tbl.find t.adj b))
  end

let build (func : Func.t) liveness =
  let t = { adj = Var.Tbl.create 64 } in
  Var.Set.iter (fun v -> add_node t v) (Func.defined_vars func);
  (* Definition points: the defined variable interferes with everything
     live afterwards, except the source of a move (coalescable pair). *)
  List.iter
    (fun (b : Block.t) ->
      let l = b.Block.label in
      Array.iteri
        (fun i instr ->
          match Instr.def instr with
          | None -> ()
          | Some d ->
            let live = Liveness.live_after_instr liveness l i in
            let exempt =
              match instr with
              | Instr.Unop (Instr.Mov, _, s) -> Some s
              | Instr.Const _ | Instr.Unop _ | Instr.Binop _ | Instr.Load _
              | Instr.Store _ | Instr.Call _ | Instr.Nop ->
                None
            in
            Var.Set.iter
              (fun v ->
                let skip =
                  match exempt with Some s -> Var.equal v s | None -> false
                in
                if not skip then add_edge t d v)
              live)
        b.Block.body)
    func.Func.blocks;
  (* Parameters are "defined" on entry: they interfere with each other and
     with everything live into the entry block. *)
  let entry_live = Liveness.live_in liveness (Func.entry_label func) in
  List.iteri
    (fun i p ->
      Var.Set.iter (fun v -> add_edge t p v) entry_live;
      List.iteri (fun j q -> if i < j then add_edge t p q) func.Func.params)
    func.Func.params;
  t

let vars t =
  List.sort Var.compare (Var.Tbl.fold (fun v _ acc -> v :: acc) t.adj [])

let neighbors t v =
  match Var.Tbl.find_opt t.adj v with Some s -> s | None -> Var.Set.empty

let degree t v = Var.Set.cardinal (neighbors t v)
let interferes t a b = Var.Set.mem b (neighbors t a)

let num_edges t =
  let total = Var.Tbl.fold (fun _ s acc -> acc + Var.Set.cardinal s) t.adj 0 in
  total / 2
