open Tdfa_ir
open Tdfa_floorplan

type outcome = { assignment : Assignment.t; spilled : Var.Set.t }

let run graph layout ~policy ~weights =
  let k = Layout.num_cells layout in
  let all_vars = Interference.vars graph in
  (* Working copy of the degrees over the not-yet-removed node set. *)
  let removed = Var.Tbl.create 64 in
  let still_in v = not (Var.Tbl.mem removed v) in
  let current_degree v =
    Var.Set.cardinal (Var.Set.filter still_in (Interference.neighbors graph v))
  in
  let remaining () = List.filter still_in all_vars in
  (* Simplify: push low-degree nodes, preferring to remove *cold* ones
     first so hot ones are selected (coloured) first. When stuck, remove
     the worst spill candidate (lowest weight/degree) optimistically. *)
  let stack = ref [] in
  let rec simplify () =
    match remaining () with
    | [] -> ()
    | vars ->
      let low = List.filter (fun v -> current_degree v < k) vars in
      let pick_min score vs =
        List.fold_left
          (fun best v ->
            match best with
            | None -> Some v
            | Some b ->
              let sv = score v and sb = score b in
              if sv < sb -. 1e-12 then Some v
              else if sb < sv -. 1e-12 then best
              else if Var.compare v b < 0 then Some v
              else best)
          None vs
      in
      let chosen =
        match low with
        | _ :: _ -> pick_min (fun v -> weights v) low
        | [] ->
          pick_min
            (fun v -> weights v /. float_of_int (max 1 (current_degree v)))
            vars
      in
      (match chosen with
       | Some v ->
         Var.Tbl.replace removed v ();
         stack := v :: !stack;
         simplify ()
       | None -> ())
  in
  simplify ();
  (* Select: pop hot-first; colours of coloured neighbours are forbidden. *)
  let chooser = Policy.make_chooser policy layout in
  let assignment = ref Assignment.empty in
  let spilled = ref Var.Set.empty in
  List.iter
    (fun v ->
      let forbidden =
        Var.Set.fold
          (fun n acc ->
            match Assignment.cell_of_var !assignment n with
            | Some c -> Policy.Int_set.add c acc
            | None -> acc)
          (Interference.neighbors graph v)
          Policy.Int_set.empty
      in
      match Policy.choose chooser ~forbidden ~weight:(weights v) with
      | Some cell -> assignment := Assignment.add !assignment v cell
      | None -> spilled := Var.Set.add v !spilled)
    !stack;
  { assignment = !assignment; spilled = !spilled }
