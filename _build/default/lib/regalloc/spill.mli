(** Spill-code insertion: rewrites a function so that the given variables
    live in memory, with a short-lived temporary around each use and each
    definition. This is also the mechanism behind the paper's "spill the
    critical variables" thermal optimization (§4). *)

open Tdfa_ir

val base_address : int
(** Start of the spill area in the interpreter's flat memory; kernels keep
    their data well below it. *)

val rewrite : ?slot_base:int -> Func.t -> Var.Set.t -> Func.t
(** Every use of a spilled variable loads it into a fresh temporary first;
    every definition stores through a fresh temporary. Spilled parameters
    are stored to their slot on entry.

    [slot_base] (default 0) offsets the slots within the spill area;
    callers spilling in several rounds must pass the number of slots
    already handed out, or later rounds would clobber earlier ones. *)

val temp_prefix : string
(** Prefix of the temporaries introduced here, for tests. *)
