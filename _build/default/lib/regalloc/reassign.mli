(** Post-hoc thermal register re-assignment, after the paper's reference
    [3] (Zhou et al., DAC 2008): keep the compiled code fixed and only
    permute which physical register each variable occupies, minimising a
    power-density surrogate. Re-assignment never changes validity — cell
    swaps preserve the distinct-cells-for-interfering-variables invariant,
    and moves target globally free cells. *)

open Tdfa_ir
open Tdfa_floorplan

val cost : Layout.t -> weights:(Var.t -> float) -> Assignment.t -> float
(** The surrogate objective: proximity-weighted interaction of per-cell
    access loads (hot neighbours are expensive, spread loads are cheap). *)

val improve :
  ?iterations:int ->
  ?seed:int ->
  Layout.t ->
  weights:(Var.t -> float) ->
  Assignment.t ->
  Assignment.t
(** Seeded local search (default 2000 proposals): random swaps of two
    variables' cells and random moves to free cells, accepting strict
    improvements. Deterministic for a given seed. *)
