lib/regalloc/policy.ml: Array Float Int Layout List Option Random Set Tdfa_floorplan
