lib/regalloc/policy.mli: Layout Set Tdfa_floorplan
