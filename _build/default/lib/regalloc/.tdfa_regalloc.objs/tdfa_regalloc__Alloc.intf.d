lib/regalloc/alloc.mli: Assignment Func Layout Policy Tdfa_floorplan Tdfa_ir Var
