lib/regalloc/spill.mli: Func Tdfa_ir Var
