lib/regalloc/alloc.ml: Assignment Coloring Func Interference Liveness Loops Printf Spill Tdfa_dataflow Tdfa_ir Use_def Var
