lib/regalloc/reassign.ml: Array Assignment Layout List Random Tdfa_floorplan
