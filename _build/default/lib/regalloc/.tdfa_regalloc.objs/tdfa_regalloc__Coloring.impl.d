lib/regalloc/coloring.ml: Assignment Interference Layout List Policy Tdfa_floorplan Tdfa_ir Var
