lib/regalloc/interference.mli: Func Liveness Tdfa_dataflow Tdfa_ir Var
