lib/regalloc/assignment.ml: Format Int List Tdfa_ir Var
