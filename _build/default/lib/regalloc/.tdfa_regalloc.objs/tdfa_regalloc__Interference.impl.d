lib/regalloc/interference.ml: Array Block Func Instr List Liveness Tdfa_dataflow Tdfa_ir Var
