lib/regalloc/spill.ml: Array Block Func Instr Label List Printf Tdfa_ir Var
