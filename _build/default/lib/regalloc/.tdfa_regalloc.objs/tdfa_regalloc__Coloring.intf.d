lib/regalloc/coloring.mli: Assignment Interference Layout Policy Tdfa_floorplan Tdfa_ir Var
