lib/regalloc/reassign.mli: Assignment Layout Tdfa_floorplan Tdfa_ir Var
