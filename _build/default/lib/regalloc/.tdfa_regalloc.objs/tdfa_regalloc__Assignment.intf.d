lib/regalloc/assignment.mli: Format Tdfa_ir Var
