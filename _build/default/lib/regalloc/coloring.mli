(** Chaitin–Briggs graph colouring over the interference graph. The
    *colour choice* (which free cell) is delegated to a {!Policy}
    chooser — that choice is irrelevant to correctness but decisive for
    the thermal map, which is the paper's point. *)

open Tdfa_ir
open Tdfa_floorplan

type outcome = {
  assignment : Assignment.t;  (** colours for the non-spilled variables *)
  spilled : Var.Set.t;  (** variables that could not be coloured *)
}

val run :
  Interference.t ->
  Layout.t ->
  policy:Policy.t ->
  weights:(Var.t -> float) ->
  outcome
(** Hot variables (by weight) are selected first so they receive the
    policy's preferred cells; spill candidates are picked by lowest
    weight/degree ratio. *)
