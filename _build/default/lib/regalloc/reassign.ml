open Tdfa_floorplan

(* Per-cell accumulated access weight under an assignment. *)
let cell_loads layout ~weights assignment =
  let loads = Array.make (Layout.num_cells layout) 0.0 in
  List.iter
    (fun (v, c) -> loads.(c) <- loads.(c) +. weights v)
    (Assignment.bindings assignment);
  loads

let cost_of_loads layout loads =
  (* Self term: power density on the cell; interaction term: hot
     neighbourhoods. Mirrors how the RC network superposes sources. *)
  let n = Array.length loads in
  let total = ref 0.0 in
  for c = 0 to n - 1 do
    if loads.(c) > 0.0 then begin
      total := !total +. (loads.(c) *. loads.(c));
      for d = c + 1 to n - 1 do
        if loads.(d) > 0.0 then
          total :=
            !total
            +. (2.0 *. loads.(c) *. loads.(d)
                /. (1.0 +. float_of_int (Layout.manhattan layout c d)))
      done
    end
  done;
  !total

let cost layout ~weights assignment =
  cost_of_loads layout (cell_loads layout ~weights assignment)

let improve ?(iterations = 2000) ?(seed = 1) layout ~weights assignment =
  let rng = Random.State.make [| seed |] in
  let bindings = Array.of_list (Assignment.bindings assignment) in
  let n_vars = Array.length bindings in
  if n_vars = 0 then assignment
  else begin
    let num_cells = Layout.num_cells layout in
    let loads = cell_loads layout ~weights assignment in
    let occupied = Array.make num_cells false in
    Array.iter (fun (_, c) -> occupied.(c) <- true) bindings;
    let current = ref (cost_of_loads layout loads) in
    (* Apply a tentative load delta and return the new cost. *)
    let try_change changes =
      List.iter (fun (c, dw) -> loads.(c) <- loads.(c) +. dw) changes;
      let fresh = cost_of_loads layout loads in
      if fresh < !current -. 1e-9 then begin
        current := fresh;
        true
      end
      else begin
        List.iter (fun (c, dw) -> loads.(c) <- loads.(c) -. dw) changes;
        false
      end
    in
    for _ = 1 to iterations do
      if Random.State.bool rng && n_vars >= 2 then begin
        (* Swap the cells of two variables. *)
        let i = Random.State.int rng n_vars in
        let j = Random.State.int rng n_vars in
        let vi, ci = bindings.(i) and vj, cj = bindings.(j) in
        if ci <> cj then begin
          let wi = weights vi and wj = weights vj in
          let changes =
            [ (ci, wj -. wi); (cj, wi -. wj) ]
          in
          if try_change changes then begin
            bindings.(i) <- (vi, cj);
            bindings.(j) <- (vj, ci)
          end
        end
      end
      else begin
        (* Move one variable to a globally free cell. *)
        let i = Random.State.int rng n_vars in
        let vi, ci = bindings.(i) in
        let target = Random.State.int rng num_cells in
        if not occupied.(target) then begin
          let wi = weights vi in
          if try_change [ (ci, -.wi); (target, wi) ] then begin
            bindings.(i) <- (vi, target);
            occupied.(target) <- true;
            (* The old cell may still host other variables. *)
            occupied.(ci) <-
              Array.exists (fun (_, c) -> c = ci) bindings
          end
        end
      end
    done;
    Assignment.of_bindings (Array.to_list bindings)
  end
