open Tdfa_ir

let base_address = 1_000_000
let temp_prefix = "spl_"

let rewrite ?(slot_base = 0) (func : Func.t) spilled =
  if Var.Set.is_empty spilled then func
  else begin
    let slots = Var.Tbl.create 8 in
    List.iteri
      (fun i v -> Var.Tbl.replace slots v (slot_base + i))
      (Var.Set.elements spilled);
    let slot v = Var.Tbl.find slots v in
    let counter = ref 0 in
    let fresh prefix =
      let v = Var.of_string (Printf.sprintf "%s%s%d" temp_prefix prefix !counter) in
      incr counter;
      v
    in
    (* Emit "load v's slot into tmp": const + load. *)
    let load_of v =
      let base = fresh "b" in
      let tmp = fresh "u" in
      ( tmp,
        [ Instr.Const (base, base_address); Instr.Load (tmp, base, slot v) ] )
    in
    let store_of v tmp =
      let base = fresh "b" in
      [ Instr.Const (base, base_address); Instr.Store (tmp, base, slot v) ]
    in
    let rewrite_instr i =
      (* Loads for spilled uses (one temp per distinct spilled use). *)
      let used = List.sort_uniq Var.compare (Instr.uses i) in
      let spilled_uses = List.filter (fun v -> Var.Set.mem v spilled) used in
      let mapping, preludes =
        List.fold_left
          (fun (m, ps) v ->
            let tmp, code = load_of v in
            (Var.Map.add v tmp m, ps @ code))
          (Var.Map.empty, []) spilled_uses
      in
      let subst v =
        match Var.Map.find_opt v mapping with Some t -> t | None -> v
      in
      let i = Instr.map_uses subst i in
      match Instr.def i with
      | Some d when Var.Set.mem d spilled ->
        let tmp = fresh "d" in
        let i = Instr.map_def (fun _ -> tmp) i in
        preludes @ [ i ] @ store_of d tmp
      | Some _ | None -> preludes @ [ i ]
    in
    let rewrite_term (b : Block.t) =
      let used =
        List.sort_uniq Var.compare (Block.term_uses b.Block.term)
      in
      let spilled_uses = List.filter (fun v -> Var.Set.mem v spilled) used in
      if spilled_uses = [] then ([], b.Block.term)
      else begin
        let mapping, preludes =
          List.fold_left
            (fun (m, ps) v ->
              let tmp, code = load_of v in
              (Var.Map.add v tmp m, ps @ code))
            (Var.Map.empty, []) spilled_uses
        in
        let subst v =
          match Var.Map.find_opt v mapping with Some t -> t | None -> v
        in
        let term =
          match b.Block.term with
          | Block.Jump l -> Block.Jump l
          | Block.Branch (c, t, e) -> Block.Branch (subst c, t, e)
          | Block.Return (Some v) -> Block.Return (Some (subst v))
          | Block.Return None -> Block.Return None
        in
        (preludes, term)
      end
    in
    let entry = Func.entry_label func in
    let blocks =
      List.map
        (fun (b : Block.t) ->
          let body =
            Array.to_list b.Block.body |> List.concat_map rewrite_instr
          in
          (* Spilled parameters are materialised into their slots at the
             top of the entry block. *)
          let param_stores =
            if Label.equal b.Block.label entry then
              List.concat_map
                (fun p ->
                  if Var.Set.mem p spilled then store_of p p else [])
                func.Func.params
            else []
          in
          let preludes, term = rewrite_term b in
          Block.make b.Block.label (param_stores @ body @ preludes) term)
        func.Func.blocks
    in
    Func.make ~name:func.Func.name ~params:func.Func.params blocks
  end
