(** Interference graph: an edge joins two variables whose live ranges
    overlap (§2 — such variables cannot share a register). Move-related
    pairs ([d <- mov s]) are not made to interfere by the move itself. *)

open Tdfa_ir
open Tdfa_dataflow

type t

val build : Func.t -> Liveness.t -> t
val vars : t -> Var.t list
(** All nodes, sorted by name for determinism. *)

val neighbors : t -> Var.t -> Var.Set.t
val degree : t -> Var.t -> int
val interferes : t -> Var.t -> Var.t -> bool
val num_edges : t -> int
