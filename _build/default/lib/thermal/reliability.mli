(** Temperature-driven reliability assessment (§1: steep thermal gradients
    "significantly reduce the reliability of silicon systems").

    Electromigration-style lifetime follows Black's equation: mean time to
    failure scales as [exp (Ea / (k T))]. We report lifetimes *relative*
    to operation at the reference temperature, so policies can be compared
    without committing to absolute constants, plus a gradient-stress
    factor that penalises steep spatial gradients. *)

open Tdfa_floorplan

val activation_energy_ev : float
(** 0.7 eV — a standard electromigration activation energy. *)

val boltzmann_ev_per_k : float

val acceleration_factor : t_ref_k:float -> float -> float
(** [acceleration_factor ~t_ref_k t] is how much faster the cell ages at
    temperature [t] than at [t_ref_k]; 1.0 at the reference, > 1 when
    hotter. *)

type assessment = {
  mttf_rel_min : float;
      (** lifetime of the weakest (hottest) cell, relative to uniform
          operation at the reference temperature *)
  mttf_rel_mean : float;
  weakest_cell : int;
  gradient_stress : float;
      (** mean neighbour gradient in kelvin — the thermo-mechanical
          stress proxy *)
}

val assess : ?t_ref_k:float -> Layout.t -> float array -> assessment
(** Default reference: the ambient of {!Params.default}. *)

val pp : Format.formatter -> assessment -> unit

(** {2 Thermal cycling}

    Repeated heat-up/cool-down swings fatigue interconnect
    (Coffin–Manson): cycles to failure scale as [delta_T ^ -q]. The
    damage index below sums [swing ^ q] over the half-cycles of a peak
    temperature history, so policies can be compared on transient
    behaviour, not just the steady map. *)

type cycling = {
  half_cycles : int;  (** swings of at least the threshold *)
  max_swing_k : float;
  damage_index : float;  (** sum of swing^q, arbitrary units *)
}

val coffin_manson_exponent : float
(** q = 3.5, a typical solder/interconnect fatigue exponent. *)

val turning_points : float list -> float list
(** Local extrema of the history (first and last samples included). *)

val cycling : ?min_swing_k:float -> ?exponent:float -> float list -> cycling
(** Swings smaller than [min_swing_k] (default 0.5 K) are ignored. *)
