type policy = { trigger_k : float; throttle_factor : float }

type result = {
  final_temps : float array;
  peak_k : float;
  throttled_windows : int;
  total_windows : int;
  slowdown : float;
}

let array_max a = Array.fold_left Float.max neg_infinity a

(* Shared engine: [factor_for] maps the current peak to a speed factor in
   (0, 1]. *)
let run_with model ~factor_for ~power_of_window ~windows ~window_s =
  let sim = Simulator.create model in
  let throttled = ref 0 in
  let time = ref 0.0 in
  let peak = ref neg_infinity in
  for w = 0 to windows - 1 do
    let power = power_of_window w in
    let f = factor_for (array_max (Simulator.temps sim)) in
    if f < 1.0 then begin
      (* Same energy over a longer window: power scales down, wall-clock
         time scales up. *)
      incr throttled;
      let scaled = Array.map (fun p -> p *. f) power in
      Simulator.step sim ~power:scaled ~dt:(window_s /. f);
      time := !time +. (window_s /. f)
    end
    else begin
      Simulator.step sim ~power ~dt:window_s;
      time := !time +. window_s
    end;
    peak := Float.max !peak (array_max (Simulator.temps sim))
  done;
  {
    final_temps = Simulator.temps sim;
    peak_k = !peak;
    throttled_windows = !throttled;
    total_windows = windows;
    slowdown = !time /. (float_of_int windows *. window_s);
  }

let run model policy ~power_of_window ~windows ~window_s =
  if policy.throttle_factor <= 0.0 || policy.throttle_factor > 1.0 then
    invalid_arg "Dtm.run: throttle_factor must be in (0, 1]";
  let factor_for peak =
    if peak > policy.trigger_k then policy.throttle_factor else 1.0
  in
  run_with model ~factor_for ~power_of_window ~windows ~window_s

let run_multilevel model ~levels ~power_of_window ~windows ~window_s =
  if levels = [] then invalid_arg "Dtm.run_multilevel: no levels";
  List.iter
    (fun (_, f) ->
      if f <= 0.0 || f > 1.0 then
        invalid_arg "Dtm.run_multilevel: factor must be in (0, 1]")
    levels;
  let sorted =
    List.sort (fun (a, _) (b, _) -> Float.compare a b) levels
  in
  let factor_for peak =
    List.fold_left
      (fun acc (trigger, f) -> if peak > trigger then f else acc)
      1.0 sorted
  in
  run_with model ~factor_for ~power_of_window ~windows ~window_s
