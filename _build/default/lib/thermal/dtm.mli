(** Reactive dynamic thermal management (DTM) baseline — the runtime
    mechanism (after Srinivasan et al., the paper's ref [1]) that
    compile-time thermal awareness tries to make unnecessary.

    The policy watches the simulated peak temperature; while it exceeds
    the trigger, execution is throttled: the same work is spread over
    [1 / throttle_factor] more wall-clock time, scaling dynamic power by
    [throttle_factor]. *)

type policy = {
  trigger_k : float;
  throttle_factor : float;  (** in (0, 1]; 1.0 disables throttling *)
}

type result = {
  final_temps : float array;
  peak_k : float;  (** highest peak seen over the whole run *)
  throttled_windows : int;
  total_windows : int;
  slowdown : float;
      (** wall-clock time relative to unthrottled execution (>= 1.0) *)
}

val run :
  Rc_model.t ->
  policy ->
  power_of_window:(int -> float array) ->
  windows:int ->
  window_s:float ->
  result
(** @raise Invalid_argument when [throttle_factor] is outside (0, 1]. *)

val run_multilevel :
  Rc_model.t ->
  levels:(float * float) list ->
  power_of_window:(int -> float array) ->
  windows:int ->
  window_s:float ->
  result
(** DVFS-style graded throttling: [levels] are (trigger, factor) pairs;
    each window runs at the factor of the deepest level whose trigger the
    current peak exceeds (1.0 when below all triggers). [throttled_windows]
    counts windows run below full speed.
    @raise Invalid_argument when a factor is outside (0, 1] or levels is
    empty. *)
