(** Technology coefficients of the thermal model (§4: "the technology
    coefficients of logic activity and peak power found in the thermal
    models"). Defaults approximate a 90 nm-class register file clocked at
    1 GHz; they are deliberately ordinary so that experiments exercise the
    *shape* of the paper's claims rather than absolute temperatures. *)

type t = {
  ambient_k : float;  (** heat-sink / package reference temperature *)
  clock_hz : float;
  read_energy_j : float;  (** dynamic energy per register read *)
  write_energy_j : float;  (** dynamic energy per register write *)
  lateral_conductance_w_per_k : float;
      (** effective conductance between adjacent cells *)
  vertical_conductance_w_per_k : float;
      (** per-cell conductance towards the sink (package + spreading) *)
  cell_capacitance_j_per_k : float;
  leakage_w : float;  (** per-cell leakage power at ambient *)
  leakage_temp_coeff : float;
      (** linearised leakage increase per kelvin above ambient *)
}

val default : t

val max_stable_dt : t -> float
(** Largest forward-Euler step for which the explicit integration of the
    RC network is numerically stable ([C / sum of conductances], with a
    safety factor of 2). *)

val pp : Format.formatter -> t -> unit
