type t = {
  model : Rc_model.t;
  mutable temps : float array;
  mutable peaks_rev : float list;
}

let create model =
  let n = Rc_model.num_nodes model in
  let ambient = (Rc_model.params model).Params.ambient_k in
  { model; temps = Array.make n ambient; peaks_rev = [] }

let temps t = Array.copy t.temps

let reset t =
  let ambient = (Rc_model.params t.model).Params.ambient_k in
  Array.fill t.temps 0 (Array.length t.temps) ambient;
  t.peaks_rev <- []

let array_max a = Array.fold_left Float.max neg_infinity a

let step t ~power ~dt =
  let p = Rc_model.params t.model in
  let dt_max = Params.max_stable_dt p in
  let substeps = max 1 (int_of_float (Float.ceil (dt /. dt_max))) in
  let h = dt /. float_of_int substeps in
  for _ = 1 to substeps do
    let leak = Rc_model.leakage_power t.model ~temps:t.temps in
    let total = Array.mapi (fun i pw -> pw +. leak.(i)) power in
    let deriv = Rc_model.derivative t.model ~temps:t.temps ~power:total in
    Array.iteri (fun i d -> t.temps.(i) <- t.temps.(i) +. (h *. d)) deriv
  done;
  t.peaks_rev <- array_max t.temps :: t.peaks_rev

let run_windows t power_of_window ~windows ~window_s =
  for w = 0 to windows - 1 do
    step t ~power:(power_of_window w) ~dt:window_s
  done

let peak_history t = List.rev t.peaks_rev
