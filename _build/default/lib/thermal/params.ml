type t = {
  ambient_k : float;
  clock_hz : float;
  read_energy_j : float;
  write_energy_j : float;
  lateral_conductance_w_per_k : float;
  vertical_conductance_w_per_k : float;
  cell_capacitance_j_per_k : float;
  leakage_w : float;
  leakage_temp_coeff : float;
}

let default =
  {
    ambient_k = 318.0;
    clock_hz = 1.0e9;
    read_energy_j = 6.0e-12;
    write_energy_j = 8.0e-12;
    lateral_conductance_w_per_k = 5.0e-4;
    vertical_conductance_w_per_k = 4.0e-5;
    cell_capacitance_j_per_k = 1.2e-8;
    leakage_w = 3.0e-5;
    leakage_temp_coeff = 0.012;
  }

let max_stable_dt p =
  let g_total =
    (4.0 *. p.lateral_conductance_w_per_k) +. p.vertical_conductance_w_per_k
  in
  p.cell_capacitance_j_per_k /. g_total /. 2.0

let pp ppf p =
  Format.fprintf ppf
    "ambient=%.1fK clock=%.2eHz Eread=%.2eJ Ewrite=%.2eJ glat=%.2e gvert=%.2e \
     C=%.2e leak=%.2eW/cell (+%.3f/K)"
    p.ambient_k p.clock_hz p.read_energy_j p.write_energy_j
    p.lateral_conductance_w_per_k p.vertical_conductance_w_per_k
    p.cell_capacitance_j_per_k p.leakage_w p.leakage_temp_coeff
