(** Summary statistics of a temperature field — the quantities Fig. 1
    compares across register assignment policies. *)

open Tdfa_floorplan

type summary = {
  peak_k : float;
  mean_k : float;
  min_k : float;
  range_k : float;  (** peak - min: the global thermal gradient *)
  stddev_k : float;
  max_neighbor_gradient_k : float;
      (** steepest cell-to-cell step — the local gradient that damages
          reliability *)
  hotspot_cells : int;  (** cells more than {!hotspot_margin_k} above mean *)
}

val hotspot_margin_k : float

val summarize : Layout.t -> float array -> summary
val peak_cell : float array -> int
(** Index of the hottest cell (first of equals). *)

val pp_summary : Format.formatter -> summary -> unit
