open Tdfa_floorplan

let activation_energy_ev = 0.7
let boltzmann_ev_per_k = 8.617e-5

let acceleration_factor ~t_ref_k t =
  exp (activation_energy_ev /. boltzmann_ev_per_k *. ((1.0 /. t_ref_k) -. (1.0 /. t)))

type assessment = {
  mttf_rel_min : float;
  mttf_rel_mean : float;
  weakest_cell : int;
  gradient_stress : float;
}

let assess ?t_ref_k layout temps =
  let t_ref_k =
    match t_ref_k with Some t -> t | None -> Params.default.Params.ambient_k
  in
  let n = Array.length temps in
  assert (n = Layout.num_cells layout && n > 0);
  let mttf t = 1.0 /. acceleration_factor ~t_ref_k t in
  let weakest = ref 0 in
  let sum = ref 0.0 in
  Array.iteri
    (fun i t ->
      sum := !sum +. mttf t;
      if t > temps.(!weakest) then weakest := i)
    temps;
  let gradient_sum = ref 0.0 in
  let gradient_count = ref 0 in
  List.iter
    (fun i ->
      List.iter
        (fun j ->
          if j > i then begin
            gradient_sum := !gradient_sum +. Float.abs (temps.(i) -. temps.(j));
            incr gradient_count
          end)
        (Layout.neighbors layout i))
    (Layout.cells layout);
  {
    mttf_rel_min = mttf temps.(!weakest);
    mttf_rel_mean = !sum /. float_of_int n;
    weakest_cell = !weakest;
    gradient_stress =
      (if !gradient_count = 0 then 0.0
       else !gradient_sum /. float_of_int !gradient_count);
  }

let pp ppf a =
  Format.fprintf ppf "mttf_min=%.3fx mttf_mean=%.3fx weakest=r%d grad_stress=%.3fK"
    a.mttf_rel_min a.mttf_rel_mean a.weakest_cell a.gradient_stress

type cycling = {
  half_cycles : int;
  max_swing_k : float;
  damage_index : float;
}

let coffin_manson_exponent = 3.5

(* Local extrema: keep samples where the slope changes sign (plateaus
   collapse to one point). *)
let turning_points history =
  match history with
  | [] | [ _ ] -> history
  | first :: rest ->
    let rec walk acc prev trend = function
      | [] -> List.rev (prev :: acc)
      | x :: tl ->
        let dir = Float.compare x prev in
        if dir = 0 then walk acc prev trend tl
        else if trend = 0 || dir = trend then walk acc x dir tl
        else walk (prev :: acc) x dir tl
    in
    first :: walk [] first 0 rest

let cycling ?(min_swing_k = 0.5) ?(exponent = coffin_manson_exponent) history =
  let points = turning_points history in
  let rec swings acc = function
    | a :: (b :: _ as rest) ->
      let swing = Float.abs (b -. a) in
      swings (if swing >= min_swing_k then swing :: acc else acc) rest
    | [ _ ] | [] -> acc
  in
  let all = swings [] points in
  {
    half_cycles = List.length all;
    max_swing_k = List.fold_left Float.max 0.0 all;
    damage_index = List.fold_left (fun acc s -> acc +. (s ** exponent)) 0.0 all;
  }
