open Tdfa_floorplan

type summary = {
  peak_k : float;
  mean_k : float;
  min_k : float;
  range_k : float;
  stddev_k : float;
  max_neighbor_gradient_k : float;
  hotspot_cells : int;
}

let hotspot_margin_k = 2.0

let summarize layout temps =
  let n = Array.length temps in
  assert (n = Layout.num_cells layout && n > 0);
  let peak = Array.fold_left Float.max neg_infinity temps in
  let low = Array.fold_left Float.min infinity temps in
  let mean = Array.fold_left ( +. ) 0.0 temps /. float_of_int n in
  let variance =
    Array.fold_left (fun acc t -> acc +. ((t -. mean) ** 2.0)) 0.0 temps
    /. float_of_int n
  in
  let max_gradient = ref 0.0 in
  List.iter
    (fun i ->
      List.iter
        (fun j ->
          max_gradient := Float.max !max_gradient (Float.abs (temps.(i) -. temps.(j))))
        (Layout.neighbors layout i))
    (Layout.cells layout);
  let hotspots =
    Array.fold_left
      (fun acc t -> if t > mean +. hotspot_margin_k then acc + 1 else acc)
      0 temps
  in
  {
    peak_k = peak;
    mean_k = mean;
    min_k = low;
    range_k = peak -. low;
    stddev_k = sqrt variance;
    max_neighbor_gradient_k = !max_gradient;
    hotspot_cells = hotspots;
  }

let peak_cell temps =
  let best = ref 0 in
  Array.iteri (fun i t -> if t > temps.(!best) then best := i) temps;
  !best

let pp_summary ppf s =
  Format.fprintf ppf
    "peak=%.2fK mean=%.2fK range=%.2fK stddev=%.2fK grad=%.2fK hotspots=%d"
    s.peak_k s.mean_k s.range_k s.stddev_k s.max_neighbor_gradient_k
    s.hotspot_cells
