(** Transient thermal simulator: forward-Euler integration of the RC
    network with automatic sub-stepping for stability, plus the
    temperature-dependent leakage feedback loop. *)

type t

val create : Rc_model.t -> t
(** All nodes start at ambient. *)

val temps : t -> float array
(** Current temperatures (a copy). *)

val reset : t -> unit

val step : t -> power:float array -> dt:float -> unit
(** Advance by [dt] seconds with the given dynamic power per cell;
    leakage is added internally. Sub-steps as needed for stability. *)

val run_windows : t -> (int -> float array) -> windows:int -> window_s:float -> unit
(** [run_windows t power_of_window ~windows ~window_s] integrates
    [windows] consecutive windows, asking for the dynamic power of each. *)

val peak_history : t -> float list
(** Peak temperature recorded after each {!step}/window, oldest first. *)
