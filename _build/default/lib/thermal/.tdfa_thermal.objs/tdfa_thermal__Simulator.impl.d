lib/thermal/simulator.ml: Array Float List Params Rc_model
