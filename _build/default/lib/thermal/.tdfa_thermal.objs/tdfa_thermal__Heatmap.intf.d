lib/thermal/heatmap.mli: Layout Tdfa_floorplan
