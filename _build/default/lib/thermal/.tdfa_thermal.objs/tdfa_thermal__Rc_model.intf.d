lib/thermal/rc_model.mli: Layout Params Tdfa_floorplan
