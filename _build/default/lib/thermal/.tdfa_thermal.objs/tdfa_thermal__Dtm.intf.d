lib/thermal/dtm.mli: Rc_model
