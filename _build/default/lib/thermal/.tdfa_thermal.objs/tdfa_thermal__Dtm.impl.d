lib/thermal/dtm.ml: Array Float List Simulator
