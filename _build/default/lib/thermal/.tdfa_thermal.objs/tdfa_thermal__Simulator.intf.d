lib/thermal/simulator.mli: Rc_model
