lib/thermal/rc_model.ml: Array Float Layout Params Tdfa_floorplan
