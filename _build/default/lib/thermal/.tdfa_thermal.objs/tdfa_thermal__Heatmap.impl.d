lib/thermal/heatmap.ml: Array Buffer Float Layout List Printf String Tdfa_floorplan
