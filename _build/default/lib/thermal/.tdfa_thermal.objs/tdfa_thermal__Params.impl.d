lib/thermal/params.ml: Format
