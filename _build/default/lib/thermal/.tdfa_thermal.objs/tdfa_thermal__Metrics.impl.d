lib/thermal/metrics.ml: Array Float Format Layout List Tdfa_floorplan
