lib/thermal/reliability.mli: Format Layout Tdfa_floorplan
