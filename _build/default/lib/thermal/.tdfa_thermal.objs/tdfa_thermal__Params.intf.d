lib/thermal/params.mli: Format
