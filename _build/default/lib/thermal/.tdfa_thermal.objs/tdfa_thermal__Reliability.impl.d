lib/thermal/reliability.ml: Array Float Format Layout List Params Tdfa_floorplan
