lib/thermal/metrics.mli: Format Layout Tdfa_floorplan
