open Tdfa_floorplan

let default_ramp = ".:-=+*#%@"

let char_for ramp lo hi v =
  let n = String.length ramp in
  if hi -. lo < 1e-9 then ramp.[0]
  else
    let x = (v -. lo) /. (hi -. lo) in
    let idx = int_of_float (x *. float_of_int (n - 1) +. 0.5) in
    ramp.[max 0 (min (n - 1) idx)]

let render_normalized ?(ramp = default_ramp) ~lo ~hi layout temps =
  let buf = Buffer.create 256 in
  for row = 0 to layout.Layout.rows - 1 do
    for col = 0 to layout.Layout.cols - 1 do
      let v = temps.(Layout.index layout ~row ~col) in
      Buffer.add_char buf (char_for ramp lo hi v)
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.add_string buf (Printf.sprintf "min=%.2fK max=%.2fK\n" lo hi);
  Buffer.contents buf

let render ?ramp layout temps =
  let lo = Array.fold_left Float.min infinity temps in
  let hi = Array.fold_left Float.max neg_infinity temps in
  render_normalized ?ramp ~lo ~hi layout temps

let side_by_side ~titles maps =
  let columns = List.map (String.split_on_char '\n') maps in
  let widths =
    List.map
      (fun lines -> List.fold_left (fun w l -> max w (String.length l)) 0 lines)
      columns
  in
  let height = List.fold_left (fun h lines -> max h (List.length lines)) 0 columns in
  let pad s w = s ^ String.make (max 0 (w - String.length s)) ' ' in
  let row_of lines i = match List.nth_opt lines i with Some l -> l | None -> "" in
  let buf = Buffer.create 512 in
  (* Title row. *)
  List.iteri
    (fun k title ->
      let w = List.nth widths k in
      if k > 0 then Buffer.add_string buf "   ";
      Buffer.add_string buf (pad title w))
    titles;
  Buffer.add_char buf '\n';
  for i = 0 to height - 1 do
    List.iteri
      (fun k lines ->
        let w = List.nth widths k in
        if k > 0 then Buffer.add_string buf "   ";
        Buffer.add_string buf (pad (row_of lines i) w))
      columns;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf
