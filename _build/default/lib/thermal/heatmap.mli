(** ASCII rendering of temperature fields — the textual stand-in for the
    colour thermal maps of Fig. 1. *)

open Tdfa_floorplan

val render : ?ramp:string -> Layout.t -> float array -> string
(** One character per cell, row per line, normalised to the field's own
    min..max, followed by a min/max legend. The default ramp runs from
    cold ['.'] to hot ['@']. *)

val render_normalized : ?ramp:string -> lo:float -> hi:float -> Layout.t -> float array -> string
(** Like {!render} but against a fixed scale, so several maps can be
    compared side by side (as in Fig. 1). *)

val side_by_side : titles:string list -> string list -> string
(** Join several rendered maps horizontally under their titles. *)
