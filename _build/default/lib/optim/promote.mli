(** §4: register promotion — "promoting some memory-resident variables
    into registers, which would help ... by making more uniform the use of
    registers in time".

    Conservative scope: a load from a statically-known address inside a
    loop is hoisted into the loop's unique external predecessor when the
    loop body contains no call and no store that could alias the address.
    Aliasing follows the workloads' memory-map convention (one array per
    1000-word region, see {!Tdfa_workload.Kernels}): a store blocks a load
    when it may write the load's region, and a store whose region cannot
    be resolved blocks everything. In-loop occurrences become register
    moves. *)

open Tdfa_ir

type report = { promoted_addresses : int; loads_rewritten : int }

val apply : Func.t -> Func.t * report
