(** Composition of thermal-aware passes with cost accounting: every pass
    trades cycles (performance) for temperature, and the compromise is
    exactly what §4 says must "be explored at the compiler level". *)

open Tdfa_ir

type step = { pass : string; detail : string; cycles_after : float }

type t = { func : Func.t; steps : step list }

val start : Func.t -> t
val apply : t -> name:string -> detail:string -> (Func.t -> Func.t) -> t

val static_cycles : Func.t -> float
(** Loop-frequency-weighted cycle estimate (1 cycle per instruction and
    terminator) — the performance-cost metric of the reports. *)

val overhead_percent : t -> float
(** Relative cycle increase of the final function over the original. *)
