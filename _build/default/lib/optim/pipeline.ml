open Tdfa_ir
open Tdfa_dataflow

type step = { pass : string; detail : string; cycles_after : float }

type t = { func : Func.t; steps : step list }

let static_cycles func =
  let loops = Loops.analyze func in
  List.fold_left
    (fun acc (b : Block.t) ->
      acc
      +. (Loops.frequency loops b.Block.label
          *. float_of_int (Block.num_instrs b + 1)))
    0.0 func.Func.blocks

let start func =
  { func; steps = [ { pass = "original"; detail = ""; cycles_after = static_cycles func } ] }

let apply t ~name ~detail f =
  let func = f t.func in
  {
    func;
    steps = t.steps @ [ { pass = name; detail; cycles_after = static_cycles func } ];
  }

let overhead_percent t =
  match t.steps with
  | [] -> 0.0
  | { cycles_after = first; _ } :: _ ->
    let last = static_cycles t.func in
    (last -. first) /. first *. 100.0
