open Tdfa_ir

type report = { split : Var.t list; copies_inserted : int }

let apply ?(skip_blocks = Label.Set.empty) (func : Func.t) ~vars =
  let counter = ref 0 in
  let copies = ref 0 in
  let split_done = ref [] in
  let split_one func v =
    let defines_v (b : Block.t) =
      Array.exists
        (fun i ->
          match Instr.def i with Some d -> Var.equal d v | None -> false)
        b.Block.body
    in
    let uses_v (b : Block.t) =
      Array.exists (fun i -> List.exists (Var.equal v) (Instr.uses i)) b.Block.body
    in
    let changed = ref false in
    let rewrite (b : Block.t) =
      if
        Label.Set.mem b.Block.label skip_blocks
        || defines_v b
        || not (uses_v b)
      then b
      else begin
        let copy =
          Var.of_string
            (Printf.sprintf "spt_%s_%d" (Var.to_string v) !counter)
        in
        incr counter;
        incr copies;
        changed := true;
        let subst u = if Var.equal u v then copy else u in
        let body =
          Instr.Unop (Instr.Mov, copy, v)
          :: (Array.to_list b.Block.body |> List.map (Instr.map_uses subst))
        in
        (* Terminator reads keep the original variable: the copy's live
           range then ends inside the block. *)
        Block.make b.Block.label body b.Block.term
      end
    in
    let func = Func.map_blocks rewrite func in
    if !changed then split_done := v :: !split_done;
    func
  in
  let func = List.fold_left split_one func vars in
  (func, { split = List.rev !split_done; copies_inserted = !copies })
