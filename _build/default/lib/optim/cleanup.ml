open Tdfa_ir
open Tdfa_dataflow

let remove_unreachable (func : Func.t) =
  let reach = Func.reachable func in
  let blocks =
    List.filter
      (fun (b : Block.t) -> Label.Set.mem b.Block.label reach)
      func.Func.blocks
  in
  Func.make ~name:func.Func.name ~params:func.Func.params blocks

let dead_code_elimination (func : Func.t) =
  let removed = ref 0 in
  let rec pass func =
    let live = Liveness.analyze func in
    let changed = ref false in
    let rewrite (b : Block.t) =
      let keep = ref [] in
      Array.iteri
        (fun i instr ->
          let dead =
            Instr.is_pure instr
            &&
            match Instr.def instr with
            | Some d ->
              not (Var.Set.mem d (Liveness.live_after_instr live b.Block.label i))
            | None -> false
          in
          if dead then begin
            incr removed;
            changed := true
          end
          else keep := instr :: !keep)
        b.Block.body;
      Block.with_body b (List.rev !keep)
    in
    let func = Func.map_blocks rewrite func in
    if !changed then pass func else func
  in
  let func = pass func in
  (func, !removed)

let copy_propagation (func : Func.t) =
  let rewritten = ref 0 in
  let rewrite (b : Block.t) =
    (* copies: d -> s, meaning reads of d may read s instead. *)
    let copies = Var.Tbl.create 8 in
    let invalidate v =
      Var.Tbl.remove copies v;
      Var.Tbl.iter
        (fun d s -> if Var.equal s v then Var.Tbl.remove copies d)
        (Var.Tbl.copy copies)
    in
    let subst v =
      match Var.Tbl.find_opt copies v with
      | Some s ->
        incr rewritten;
        s
      | None -> v
    in
    let body =
      Array.to_list b.Block.body
      |> List.map (fun instr ->
             let instr = Instr.map_uses subst instr in
             (match Instr.def instr with
              | Some d -> invalidate d
              | None -> ());
             (match instr with
              | Instr.Unop (Instr.Mov, d, s) when not (Var.equal d s) ->
                Var.Tbl.replace copies d s
              | Instr.Const _ | Instr.Unop _ | Instr.Binop _ | Instr.Load _
              | Instr.Store _ | Instr.Call _ | Instr.Nop ->
                ());
             instr)
    in
    let term =
      match b.Block.term with
      | Block.Jump l -> Block.Jump l
      | Block.Branch (c, t, e) -> Block.Branch (subst c, t, e)
      | Block.Return (Some v) -> Block.Return (Some (subst v))
      | Block.Return None -> Block.Return None
    in
    Block.make b.Block.label body term
  in
  let func = Func.map_blocks rewrite func in
  (func, !rewritten)

(* Value keys for pure computations; operands are compared by name, so a
   redefinition of any operand (or of the holder) must invalidate the
   table. *)
type value_key =
  | K_unop of Instr.unop * Var.t
  | K_binop of Instr.binop * Var.t * Var.t

let key_of_instr = function
  (* Constants are deliberately not numbered: an immediate is cheaper
     than a register-to-register move, and unifying same-valued constants
     obscures induction variables (trip-count recovery). *)
  | Instr.Const (_, _) -> None
  | Instr.Unop (op, _, s) ->
    (* Moves are handled by copy propagation, not value numbering. *)
    if op = Instr.Mov then None else Some (K_unop (op, s))
  | Instr.Binop (op, _, s1, s2) ->
    (* Normalise commutative operands for more hits. *)
    let commutative =
      match op with
      | Instr.Add | Instr.Mul | Instr.And | Instr.Or | Instr.Xor
      | Instr.Seq | Instr.Sne ->
        true
      | Instr.Sub | Instr.Div | Instr.Rem | Instr.Shl | Instr.Shr
      | Instr.Slt | Instr.Sle ->
        false
    in
    let s1, s2 =
      if commutative && Var.compare s2 s1 < 0 then (s2, s1) else (s1, s2)
    in
    Some (K_binop (op, s1, s2))
  | Instr.Load _ | Instr.Store _ | Instr.Call _ | Instr.Nop -> None

let key_mentions v = function
  | K_unop (_, s) -> Var.equal s v
  | K_binop (_, s1, s2) -> Var.equal s1 v || Var.equal s2 v

let local_value_numbering (func : Func.t) =
  let replaced = ref 0 in
  let rewrite (b : Block.t) =
    let table : (value_key * Var.t) list ref = ref [] in
    let invalidate v =
      table :=
        List.filter
          (fun (key, holder) ->
            not (Var.equal holder v || key_mentions v key))
          !table
    in
    let body =
      Array.to_list b.Block.body
      |> List.map (fun instr ->
             let instr' =
               match (Instr.def instr, key_of_instr instr) with
               | Some d, Some key -> (
                 match List.assoc_opt key !table with
                 | Some holder when not (Var.equal holder d) ->
                   incr replaced;
                   Instr.Unop (Instr.Mov, d, holder)
                 | Some _ | None -> instr)
               | (Some _ | None), (Some _ | None) -> instr
             in
             (match Instr.def instr' with
              | Some d ->
                invalidate d;
                (match key_of_instr instr' with
                 (* An accumulator update (d = d op s) computes a value
                    from the *old* d: the key would be stale the moment
                    it is registered. *)
                 | Some key when not (key_mentions d key) ->
                   table := (key, d) :: !table
                 | Some _ | None -> ())
              | None -> ());
             instr')
    in
    Block.with_body b body
  in
  let func = Func.map_blocks rewrite func in
  (func, !replaced)

let constant_folding (func : Func.t) =
  let cp = Const_prop.analyze func in
  let folded = ref 0 in
  let rewrite (b : Block.t) =
    (* Walk the block re-evaluating the environment to fold each
       instruction against the facts holding right before it. *)
    let env = ref Var.Map.empty in
    let lookup v =
      match Var.Map.find_opt v !env with
      | Some x -> x
      | None -> Const_prop.value_in cp b.Block.label v
    in
    let body =
      Array.to_list b.Block.body
      |> List.map (fun instr ->
             let folded_instr =
               match (Instr.def instr, Const_prop.eval_instr instr lookup) with
               | Some d, Some (Const_prop.Value.Const k) when Instr.is_pure instr
                 -> (
                 match instr with
                 | Instr.Const _ -> instr  (* already a constant *)
                 | Instr.Unop _ | Instr.Binop _ ->
                   incr folded;
                   Instr.Const (d, k)
                 | Instr.Load _ | Instr.Store _ | Instr.Call _ | Instr.Nop ->
                   instr)
               | (Some _ | None), (Some _ | None) -> instr
             in
             (match (Instr.def folded_instr,
                     Const_prop.eval_instr folded_instr lookup) with
              | Some d, Some value -> env := Var.Map.add d value !env
              | (Some _ | None), (Some _ | None) -> ());
             folded_instr)
    in
    let term =
      match b.Block.term with
      | Block.Branch (c, t, e) -> (
        match lookup c with
        | Const_prop.Value.Const k ->
          incr folded;
          Block.Jump (if k <> 0 then t else e)
        | Const_prop.Value.Unknown | Const_prop.Value.Varying -> b.Block.term)
      | Block.Jump _ | Block.Return _ -> b.Block.term
    in
    Block.make b.Block.label body term
  in
  let func = Func.map_blocks rewrite func in
  (remove_unreachable func, !folded)

let run_all func =
  let rec fix func n =
    if n = 0 then func
    else begin
      let func, folded = constant_folding func in
      let func, reduced = Strength.apply func in
      let func, numbered = local_value_numbering func in
      let func, copied = copy_propagation func in
      let func, removed = dead_code_elimination func in
      if folded + reduced + numbered + copied + removed = 0 then func
      else fix func (n - 1)
    end
  in
  fix func 8
