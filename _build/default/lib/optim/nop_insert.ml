open Tdfa_ir

type report = { nops_inserted : int }

let apply (func : Func.t) ~hot_after ~nops =
  assert (nops >= 0);
  let inserted = ref 0 in
  let rewrite (b : Block.t) =
    let body_rev = ref [] in
    Array.iteri
      (fun index i ->
        body_rev := i :: !body_rev;
        if hot_after b.Block.label index then begin
          inserted := !inserted + nops;
          for _ = 1 to nops do
            body_rev := Instr.Nop :: !body_rev
          done
        end)
      b.Block.body;
    Block.make b.Block.label (List.rev !body_rev) b.Block.term
  in
  let func' = Func.map_blocks rewrite func in
  (func', { nops_inserted = !inserted })
