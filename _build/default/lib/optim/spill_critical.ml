open Tdfa_ir
open Tdfa_regalloc

type report = { spilled : Var.t list; added_instrs : int }

let apply func ~critical ~max_spills =
  let eligible =
    List.filter
      (fun v -> not (List.exists (Var.equal v) func.Func.params))
      critical
  in
  let chosen = List.filteri (fun i _ -> i < max_spills) eligible in
  let before = Func.instr_count func in
  let func' = Spill.rewrite func (Var.Set.of_list chosen) in
  (func', { spilled = chosen; added_instrs = Func.instr_count func' - before })
