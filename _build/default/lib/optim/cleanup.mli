(** Classic scalar clean-up passes. They run after the thermal transforms
    (splitting and promotion leave dead moves behind) and demonstrate the
    data-flow framework on its textbook clients. All passes preserve
    observable semantics. *)

open Tdfa_ir

val dead_code_elimination : Func.t -> Func.t * int
(** Iteratively remove pure instructions whose definition is never live;
    returns the rewritten function and the number of removed
    instructions. *)

val copy_propagation : Func.t -> Func.t * int
(** Block-local copy propagation: after [d <- mov s], uses of [d] read [s]
    directly until either side is redefined. Returns the number of
    rewritten uses. *)

val constant_folding : Func.t -> Func.t * int
(** Replace instructions whose result is a compile-time constant (per
    {!Tdfa_dataflow.Const_prop}) with [const] definitions, and turn
    branches on constant conditions into jumps. Unreachable blocks are
    dropped. Returns the number of folded instructions. *)

val local_value_numbering : Func.t -> Func.t * int
(** Block-local common-subexpression elimination: a pure instruction
    recomputing a value already held by a live variable becomes a move
    from it. Returns the number of replaced instructions. *)

val remove_unreachable : Func.t -> Func.t
(** Drop blocks not reachable from the entry. *)

val run_all : Func.t -> Func.t
(** Fixpoint of folding, strength reduction ({!Strength}), value
    numbering, copy propagation and DCE. *)
