(** Loop unrolling — the high-level transformation whose thermal impact
    §5 wants to understand: unrolling removes loop overhead (faster) but
    raises the access density on the loop's registers (hotter).

    Conservative scope: only two-block counted loops (header + single
    latch, the {!Tdfa_workload.Kernels.counted_loop} scaffold) whose
    statically-recovered trip count is divisible by the factor, so the
    exit test stays exact without an epilogue. *)

open Tdfa_ir

type report = { unrolled_loops : int; factor : int }

val apply : Func.t -> factor:int -> Func.t * report
(** Replicate each eligible latch body [factor] times (including the
    induction update). [factor = 1] is the identity.
    @raise Invalid_argument when [factor < 1]. *)
