open Tdfa_ir
open Tdfa_dataflow

let log2_exact k =
  if k <= 0 then None
  else
    let rec go p e = if p = k then Some e else if p > k then None else go (p * 2) (e + 1) in
    go 1 0

let apply (func : Func.t) =
  let cp = Const_prop.analyze func in
  let changed = ref 0 in
  (* Fresh shift-amount constants need names that cannot collide. *)
  let counter = ref 0 in
  let fresh () =
    incr counter;
    Var.of_string (Printf.sprintf "str_%d" !counter)
  in
  let rewrite (b : Block.t) =
    let env = ref Var.Map.empty in
    let lookup v =
      match Var.Map.find_opt v !env with
      | Some x -> x
      | None -> Const_prop.value_in cp b.Block.label v
    in
    let const_of v =
      match lookup v with Const_prop.Value.Const k -> Some k | _ -> None
    in
    (* Multiplication: annihilator, identity, then power-of-two. *)
    let simplify_mul d s1 s2 k1 k2 =
      let with_const src = function
        | 0 -> Some [ Instr.Const (d, 0) ]
        | 1 -> Some [ Instr.Unop (Instr.Mov, d, src) ]
        | k -> (
          match log2_exact k with
          | Some e ->
            let sh = fresh () in
            Some [ Instr.Const (sh, e); Instr.Binop (Instr.Shl, d, src, sh) ]
          | None -> None)
      in
      match (k1, k2) with
      | _, Some k -> with_const s1 k
      | Some k, None -> with_const s2 k
      | None, None -> None
    in
    let simplify i =
      match i with
      | Instr.Binop (Instr.Mul, d, s1, s2) ->
        simplify_mul d s1 s2 (const_of s1) (const_of s2)
      | Instr.Binop (op, d, s1, s2) -> (
        let k1 = const_of s1 and k2 = const_of s2 in
        match (op, k1, k2) with
        (* Identities. *)
        | Instr.Add, _, Some 0 | Instr.Sub, _, Some 0 | Instr.Shl, _, Some 0
        | Instr.Shr, _, Some 0 | Instr.Xor, _, Some 0 | Instr.Or, _, Some 0
        | Instr.Div, _, Some 1 ->
          Some [ Instr.Unop (Instr.Mov, d, s1) ]
        | Instr.Add, Some 0, _ | Instr.Or, Some 0, _ | Instr.Xor, Some 0, _ ->
          Some [ Instr.Unop (Instr.Mov, d, s2) ]
        (* Annihilators. *)
        | Instr.And, _, Some 0 | Instr.And, Some 0, _ ->
          Some [ Instr.Const (d, 0) ]
        (* x - x = 0, x ^ x = 0 (no constant knowledge needed). *)
        | (Instr.Sub | Instr.Xor), _, _ when Var.equal s1 s2 ->
          Some [ Instr.Const (d, 0) ]
        | ( ( Instr.Add | Instr.Sub | Instr.Mul | Instr.Div | Instr.Rem
            | Instr.And | Instr.Or | Instr.Xor | Instr.Shl | Instr.Shr
            | Instr.Slt | Instr.Sle | Instr.Seq | Instr.Sne ),
            _, _ ) ->
          None)
      | Instr.Const _ | Instr.Unop _ | Instr.Load _ | Instr.Store _
      | Instr.Call _ | Instr.Nop ->
        None
    in
    let body =
      Array.to_list b.Block.body
      |> List.concat_map (fun i ->
             let replacement = simplify i in
             let out =
               match replacement with
               | Some instrs ->
                 incr changed;
                 instrs
               | None -> [ i ]
             in
             (* Track block-local constant knowledge as we go. *)
             List.iter
               (fun i' ->
                 match (Instr.def i', Const_prop.eval_instr i' lookup) with
                 | Some d, Some value -> env := Var.Map.add d value !env
                 | (Some _ | None), (Some _ | None) -> ())
               out;
             out)
    in
    Block.with_body b body
  in
  let func = Func.map_blocks rewrite func in
  (func, !changed)
