open Tdfa_ir

type report = {
  blocks_changed : int;
  back_to_back_before : int;
  back_to_back_after : int;
}

let cells_of_instr ~cell_of_var i =
  List.sort_uniq Int.compare
    (List.filter_map cell_of_var (Instr.accessed i))

let count_back_to_back (func : Func.t) ~cell_of_var =
  let count = ref 0 in
  List.iter
    (fun (b : Block.t) ->
      let body = b.Block.body in
      for i = 0 to Array.length body - 2 do
        let c1 = cells_of_instr ~cell_of_var body.(i) in
        let c2 = cells_of_instr ~cell_of_var body.(i + 1) in
        if List.exists (fun c -> List.mem c c2) c1 then incr count
      done)
    func.Func.blocks;
  !count

let schedule_block ~cell_of_var ~is_hot_cell (b : Block.t) =
  let body = b.Block.body in
  let n = Array.length body in
  if n <= 2 then b
  else begin
    let preds = Deps.block_preds body in
    let scheduled = Array.make n false in
    let order = ref [] in
    let last_cells = ref [] in
    let ready () =
      List.filter
        (fun j ->
          (not scheduled.(j))
          && List.for_all (fun i -> scheduled.(i)) preds.(j))
        (List.init n Fun.id)
    in
    for _ = 1 to n do
      match ready () with
      | [] -> assert false
      | candidates ->
        let cost j =
          let cells = cells_of_instr ~cell_of_var body.(j) in
          let clash =
            if List.exists (fun c -> List.mem c !last_cells) cells then 2
            else 0
          in
          let hot = if List.exists is_hot_cell cells then 1 else 0 in
          clash + hot
        in
        let best =
          List.fold_left
            (fun acc j ->
              match acc with
              | None -> Some j
              | Some i -> if cost j < cost i then Some j else acc)
            None candidates
        in
        (match best with
         | Some j ->
           scheduled.(j) <- true;
           last_cells := cells_of_instr ~cell_of_var body.(j);
           order := j :: !order
         | None -> assert false)
    done;
    let order = List.rev !order in
    Block.with_body b (List.map (fun j -> body.(j)) order)
  end

let apply func ~cell_of_var ~is_hot_cell =
  let before = count_back_to_back func ~cell_of_var in
  let changed = ref 0 in
  let func' =
    Func.map_blocks
      (fun b ->
        let b' = schedule_block ~cell_of_var ~is_hot_cell b in
        if b'.Block.body <> b.Block.body then incr changed;
        b')
      func
  in
  let after = count_back_to_back func' ~cell_of_var in
  ( func',
    {
      blocks_changed = !changed;
      back_to_back_before = before;
      back_to_back_after = after;
    } )
