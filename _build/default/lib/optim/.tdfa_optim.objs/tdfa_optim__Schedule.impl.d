lib/optim/schedule.ml: Array Block Deps Fun Func Instr Int List Tdfa_ir
