lib/optim/promote.ml: Array Block Func Instr Label List Loops Printf Tdfa_dataflow Tdfa_ir Var
