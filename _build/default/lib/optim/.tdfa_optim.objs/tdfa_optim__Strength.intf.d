lib/optim/strength.mli: Func Tdfa_ir
