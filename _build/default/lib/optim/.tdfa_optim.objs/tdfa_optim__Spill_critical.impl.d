lib/optim/spill_critical.ml: Func List Spill Tdfa_ir Tdfa_regalloc Var
