lib/optim/compile.mli: Analysis Assignment Func Layout Pipeline Policy Tdfa_core Tdfa_floorplan Tdfa_ir Tdfa_regalloc Var
