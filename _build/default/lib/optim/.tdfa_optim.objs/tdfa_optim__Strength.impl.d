lib/optim/strength.ml: Array Block Const_prop Func Instr List Printf Tdfa_dataflow Tdfa_ir Var
