lib/optim/schedule.mli: Func Tdfa_ir Var
