lib/optim/pipeline.ml: Block Func List Loops Tdfa_dataflow Tdfa_ir
