lib/optim/unroll.ml: Array Block Func Label List Loops Tdfa_dataflow Tdfa_ir
