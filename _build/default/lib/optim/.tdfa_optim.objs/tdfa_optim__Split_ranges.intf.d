lib/optim/split_ranges.mli: Func Label Tdfa_ir Var
