lib/optim/cleanup.mli: Func Tdfa_ir
