lib/optim/spill_critical.mli: Func Tdfa_ir Var
