lib/optim/pipeline.mli: Func Tdfa_ir
