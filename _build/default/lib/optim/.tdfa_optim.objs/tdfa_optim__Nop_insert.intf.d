lib/optim/nop_insert.mli: Func Label Tdfa_ir
