lib/optim/promote.mli: Func Tdfa_ir
