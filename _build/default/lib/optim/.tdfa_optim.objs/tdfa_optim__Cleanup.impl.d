lib/optim/cleanup.ml: Array Block Const_prop Func Instr Label List Liveness Strength Tdfa_dataflow Tdfa_ir Var
