lib/optim/split_ranges.ml: Array Block Func Instr Label List Printf Tdfa_ir Var
