lib/optim/nop_insert.ml: Array Block Func Instr List Tdfa_ir
