lib/optim/unroll.mli: Func Tdfa_ir
