(** §4: live-range splitting — "splitting them (via copy insertion) to
    spread their accesses across a multitude of registers".

    For each selected variable, every block that only *reads* it gets a
    private copy ([c <- mov v] at block entry) and its in-block reads are
    redirected to the copy. The copies are distinct variables, so the
    allocator places them in different cells and the read traffic
    spreads. Semantics are preserved: the copy is a snapshot of a value
    the block never changes. *)

open Tdfa_ir

type report = { split : Var.t list; copies_inserted : int }

val apply :
  ?skip_blocks:Label.Set.t -> Func.t -> vars:Var.t list -> Func.t * report
(** [skip_blocks] are left untouched — callers exempt loop headers so the
    induction comparison keeps reading the original variable and
    trip-count recovery still works. *)
