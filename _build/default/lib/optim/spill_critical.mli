(** §4: "the greatest benefit will be achieved by spilling these
    'critical' variables to memory". Wraps {!Tdfa_regalloc.Spill} with the
    criticality ranking: the hottest variables are evicted from the
    register file so their accesses stop feeding the hot spot. *)

open Tdfa_ir

type report = { spilled : Var.t list; added_instrs : int }

val apply : Func.t -> critical:Var.t list -> max_spills:int -> Func.t * report
(** Spills at most [max_spills] of the given variables (hottest first).
    Parameters of the function are kept in registers. *)
