(** §4: "the insertion of NOP instructions gives the RF a chance to cool
    down between accesses in extremely hot situations, although it can
    affect overall system performance and should be applied only if no
    other option ... is feasible." *)

open Tdfa_ir

type report = { nops_inserted : int }

val apply :
  Func.t -> hot_after:(Label.t -> int -> bool) -> nops:int -> Func.t * report
(** Insert [nops] NOPs after every instruction flagged hot by
    [hot_after label index]. *)
