(** §4: thermal-aware instruction scheduling — "spreading accesses to
    registers in time ... to avoid consecutive accesses to already hot
    registers".

    Each block's body is list-scheduled over its data-dependence DAG
    (RAW/WAR/WAW on variables, conservative ordering through memory and
    calls). Among ready instructions the scheduler picks the one that
    avoids touching a cell accessed by the previously issued instruction
    and avoids predicted-hot cells; ties fall back to source order, so the
    pass is deterministic and is the identity when no choice exists. *)

open Tdfa_ir

type report = { blocks_changed : int; back_to_back_before : int; back_to_back_after : int }

val apply :
  Func.t ->
  cell_of_var:(Var.t -> int option) ->
  is_hot_cell:(int -> bool) ->
  Func.t * report

val count_back_to_back : Func.t -> cell_of_var:(Var.t -> int option) -> int
(** Number of adjacent instruction pairs sharing an accessed cell —
    the metric the pass minimises. *)
