(** Strength reduction and algebraic simplification: multiplications by
    powers of two become shifts, identities ([x + 0], [x * 1], [x ^ x],
    ...) collapse. Cheaper operations also switch less logic — the
    energy-per-instruction knob behind the thermal model's coefficients. *)

open Tdfa_ir

val apply : Func.t -> Func.t * int
(** Returns the rewritten function and the number of simplified
    instructions. Semantics-preserving. *)
