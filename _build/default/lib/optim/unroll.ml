open Tdfa_ir
open Tdfa_dataflow

type report = { unrolled_loops : int; factor : int }

(* Eligible: loop body = {header, latch}; latch is a straight-line block
   jumping back to the header; the trip count is known exactly (the
   estimator returns default_trip when it failed to recover the bound, so
   eligibility re-derives the idiom the same way and only trusts counts
   for loops matching it). *)
let eligible func (loops : Loops.t) (loop : Loops.loop) ~factor =
  let body_labels = Label.Set.elements loop.Loops.body in
  match body_labels with
  | [ a; b ] ->
    let latch_label = if Label.equal a loop.Loops.header then b else a in
    let latch = Func.find_block func latch_label in
    (match latch.Block.term with
     | Block.Jump target when Label.equal target loop.Loops.header -> (
       match Loops.exact_trip_count loops loop.Loops.header with
       | Some trip when trip mod factor = 0 && trip > 0 -> Some (latch, trip)
       | Some _ | None -> None)
     | Block.Jump _ | Block.Branch _ | Block.Return _ -> None)
  | _ -> None

let apply (func : Func.t) ~factor =
  if factor < 1 then invalid_arg "Unroll.apply: factor < 1";
  if factor = 1 then (func, { unrolled_loops = 0; factor })
  else begin
    let loops = Loops.analyze func in
    let unrolled = ref 0 in
    let func =
      List.fold_left
        (fun func (loop : Loops.loop) ->
          match eligible func loops loop ~factor with
          | None -> func
          | Some (latch, _trip) ->
            incr unrolled;
            let body = Array.to_list latch.Block.body in
            let replicated = List.concat (List.init factor (fun _ -> body)) in
            Func.replace_block func
              (Block.make latch.Block.label replicated latch.Block.term))
        func (Loops.loops loops)
    in
    (func, { unrolled_loops = !unrolled; factor })
  end
