type t = {
  rows : int;
  cols : int;
  cell_width_um : float;
  cell_height_um : float;
}

let make ?(cell_width_um = 12.0) ?(cell_height_um = 6.0) ~rows ~cols () =
  if rows <= 0 || cols <= 0 then invalid_arg "Layout.make: non-positive grid";
  if cell_width_um <= 0.0 || cell_height_um <= 0.0 then
    invalid_arg "Layout.make: non-positive cell size";
  { rows; cols; cell_width_um; cell_height_um }

let num_cells t = t.rows * t.cols

let coord t i =
  assert (i >= 0 && i < num_cells t);
  (i / t.cols, i mod t.cols)

let index t ~row ~col =
  assert (row >= 0 && row < t.rows && col >= 0 && col < t.cols);
  (row * t.cols) + col

let in_range t i = i >= 0 && i < num_cells t

let center_um t i =
  let row, col = coord t i in
  ( (float_of_int col +. 0.5) *. t.cell_width_um,
    (float_of_int row +. 0.5) *. t.cell_height_um )

let distance_um t i j =
  let xi, yi = center_um t i in
  let xj, yj = center_um t j in
  Float.hypot (xi -. xj) (yi -. yj)

let manhattan t i j =
  let ri, ci = coord t i in
  let rj, cj = coord t j in
  abs (ri - rj) + abs (ci - cj)

let neighbors t i =
  let row, col = coord t i in
  let candidates =
    [ (row - 1, col); (row, col - 1); (row, col + 1); (row + 1, col) ]
  in
  List.filter_map
    (fun (r, c) ->
      if r >= 0 && r < t.rows && c >= 0 && c < t.cols then
        Some (index t ~row:r ~col:c)
      else None)
    candidates

let chessboard_color t i =
  let row, col = coord t i in
  (row + col) land 1

let cells t = List.init (num_cells t) Fun.id
