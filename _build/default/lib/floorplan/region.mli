(** Coarse partitions of the register file, used by the pre-allocation
    placement model ("assign critical variables to disparate regions",
    §4) and by the granularity knob of the thermal state. *)

type t

val grid : Layout.t -> rows:int -> cols:int -> t
(** Partition the layout into a [rows x cols] grid of regions; layout rows
    and columns are distributed as evenly as possible.
    @raise Invalid_argument when the region grid exceeds the layout. *)

val quadrants : Layout.t -> t
val banks : Layout.t -> n:int -> t
(** [n] vertical banks (column stripes). *)

val num_regions : t -> int
val region_of_cell : t -> int -> int
val cells_of_region : t -> int -> int list
val centroid_cell : t -> int -> int
(** The cell closest to the region's geometric centre. *)
