lib/floorplan/region.ml: Array Float Layout List
