lib/floorplan/layout.ml: Float Fun List
