lib/floorplan/region.mli: Layout
