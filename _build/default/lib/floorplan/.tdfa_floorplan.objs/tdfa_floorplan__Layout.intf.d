lib/floorplan/layout.mli:
