(** Register-file floorplan: a [rows x cols] grid of register cells.

    Cell index [r * cols + c] is physical register [r * cols + c]; all
    spatial reasoning (distances, neighbourhoods, the chessboard pattern)
    lives here. Dimensions are in micrometres. *)

type t = private {
  rows : int;
  cols : int;
  cell_width_um : float;
  cell_height_um : float;
}

val make : ?cell_width_um:float -> ?cell_height_um:float -> rows:int -> cols:int -> unit -> t
(** Defaults: 12 um x 6 um cells (a 32-bit register cell footprint in a
    90 nm-class node, the technology generation of the paper).
    @raise Invalid_argument on non-positive dimensions. *)

val num_cells : t -> int
val coord : t -> int -> int * int
(** [coord t i] is [(row, col)] of cell [i]. Asserts [i] in range. *)

val index : t -> row:int -> col:int -> int
val in_range : t -> int -> bool

val center_um : t -> int -> float * float
(** Physical centre of the cell. *)

val distance_um : t -> int -> int -> float
(** Euclidean centre-to-centre distance. *)

val manhattan : t -> int -> int -> int
(** Grid (Manhattan) distance in cells. *)

val neighbors : t -> int -> int list
(** 4-connected lateral neighbours, in row-major order. *)

val chessboard_color : t -> int -> int
(** 0 for "black" cells, 1 for "white" — the checkerboard of Fig. 1(c). *)

val cells : t -> int list
(** All cell indices, ascending. *)
