type t = {
  layout : Layout.t;
  num_regions : int;
  of_cell : int array;  (* cell index -> region id *)
}

let build layout num_regions of_cell = { layout; num_regions; of_cell }

let grid (layout : Layout.t) ~rows ~cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Region.grid: non-positive grid";
  if rows > layout.Layout.rows || cols > layout.Layout.cols then
    invalid_arg "Region.grid: more regions than cells";
  let assign i =
    let r, c = Layout.coord layout i in
    let rr = r * rows / layout.Layout.rows in
    let rc = c * cols / layout.Layout.cols in
    (rr * cols) + rc
  in
  build layout (rows * cols) (Array.init (Layout.num_cells layout) assign)

let quadrants layout = grid layout ~rows:2 ~cols:2
let banks layout ~n = grid layout ~rows:1 ~cols:n

let num_regions t = t.num_regions

let region_of_cell t i =
  assert (Layout.in_range t.layout i);
  t.of_cell.(i)

let cells_of_region t r =
  List.filter (fun i -> t.of_cell.(i) = r) (Layout.cells t.layout)

let centroid_cell t r =
  let cells = cells_of_region t r in
  match cells with
  | [] -> invalid_arg "Region.centroid_cell: empty region"
  | first :: _ ->
    let n = float_of_int (List.length cells) in
    let sx, sy =
      List.fold_left
        (fun (sx, sy) i ->
          let x, y = Layout.center_um t.layout i in
          (sx +. x, sy +. y))
        (0.0, 0.0) cells
    in
    let cx, cy = (sx /. n, sy /. n) in
    let dist i =
      let x, y = Layout.center_um t.layout i in
      Float.hypot (x -. cx) (y -. cy)
    in
    List.fold_left
      (fun best i -> if dist i < dist best then i else best)
      first cells
