open Tdfa_ir

module Value = struct
  type t = Unknown | Const of int | Varying

  let join a b =
    match (a, b) with
    | Unknown, x | x, Unknown -> x
    | Const x, Const y -> if x = y then Const x else Varying
    | Varying, (Const _ | Varying) | Const _, Varying -> Varying

  let equal a b =
    match (a, b) with
    | Unknown, Unknown | Varying, Varying -> true
    | Const x, Const y -> x = y
    | (Unknown | Const _ | Varying), (Unknown | Const _ | Varying) -> false

  let pp ppf = function
    | Unknown -> Format.fprintf ppf "unknown"
    | Const k -> Format.fprintf ppf "%d" k
    | Varying -> Format.fprintf ppf "varying"
end

let eval_instr i env =
  match i with
  | Instr.Const (_, k) -> Some (Value.Const k)
  | Instr.Unop (op, _, s) -> (
    match env s with
    | Value.Const x -> Some (Value.Const (Instr.eval_unop op x))
    | Value.Unknown -> Some Value.Unknown
    | Value.Varying -> Some Value.Varying)
  | Instr.Binop (op, _, s1, s2) -> (
    match (env s1, env s2) with
    | Value.Const x, Value.Const y -> Some (Value.Const (Instr.eval_binop op x y))
    | Value.Unknown, _ | _, Value.Unknown -> Some Value.Unknown
    | Value.Varying, (Value.Const _ | Value.Varying)
    | Value.Const _, Value.Varying ->
      Some Value.Varying)
  | Instr.Load (_, _, _) | Instr.Call (Some _, _, _) -> Some Value.Varying
  | Instr.Call (None, _, _) | Instr.Store _ | Instr.Nop -> None

module Domain = struct
  type fact = Value.t Var.Map.t

  let equal = Var.Map.equal Value.equal
  let join a b = Var.Map.union (fun _ x y -> Some (Value.join x y)) a b
  let bottom = Var.Map.empty

  let get v fact =
    match Var.Map.find_opt v fact with Some x -> x | None -> Value.Unknown

  let instr i fact =
    match Instr.def i with
    | None -> fact
    | Some d -> (
      match eval_instr i (fun v -> get v fact) with
      | Some value -> Var.Map.add d value fact
      | None -> fact)

  let terminator (_ : Block.terminator) fact = fact

  let entry (f : Func.t) =
    List.fold_left
      (fun acc p -> Var.Map.add p Value.Varying acc)
      Var.Map.empty f.Func.params
end

module S = Solver.Forward (Domain)

type t = S.t

let analyze = S.solve

let value_in t l v = Domain.get v (S.input t l)
let value_out t l v = Domain.get v (S.output t l)
