open Tdfa_ir

module type DOMAIN = sig
  type fact

  val equal : fact -> fact -> bool
  val join : fact -> fact -> fact
  val bottom : fact
end

module type FORWARD = sig
  include DOMAIN

  val entry : Func.t -> fact
  val instr : Instr.t -> fact -> fact
  val terminator : Block.terminator -> fact -> fact
end

module type BACKWARD = sig
  include DOMAIN

  val exit : Func.t -> fact
  val instr : Instr.t -> fact -> fact
  val terminator : Block.terminator -> fact -> fact
end

module Forward (A : FORWARD) = struct
  type t = {
    func : Func.t;
    inputs : A.fact Label.Tbl.t;
    outputs : A.fact Label.Tbl.t;
    iterations : int;
  }

  let block_transfer (b : Block.t) fact =
    let fact = Array.fold_left (fun acc i -> A.instr i acc) fact b.Block.body in
    A.terminator b.Block.term fact

  let solve func =
    let inputs = Label.Tbl.create 16 in
    let outputs = Label.Tbl.create 16 in
    let order = Func.reverse_postorder func in
    List.iter
      (fun l ->
        Label.Tbl.replace inputs l A.bottom;
        Label.Tbl.replace outputs l A.bottom)
      order;
    let entry = Func.entry_label func in
    let preds = Label.Tbl.create 16 in
    List.iter (fun l -> Label.Tbl.replace preds l (Func.predecessors func l)) order;
    let iterations = ref 0 in
    let changed = ref true in
    while !changed do
      changed := false;
      incr iterations;
      List.iter
        (fun l ->
          let input =
            if Label.equal l entry then A.entry func
            else
              List.fold_left
                (fun acc p ->
                  match Label.Tbl.find_opt outputs p with
                  | Some o -> A.join acc o
                  | None -> acc)
                A.bottom (Label.Tbl.find preds l)
          in
          Label.Tbl.replace inputs l input;
          let output = block_transfer (Func.find_block func l) input in
          let old = Label.Tbl.find outputs l in
          if not (A.equal old output) then begin
            Label.Tbl.replace outputs l output;
            changed := true
          end)
        order
    done;
    { func; inputs; outputs; iterations = !iterations }

  let input t l =
    match Label.Tbl.find_opt t.inputs l with Some f -> f | None -> A.bottom

  let output t l =
    match Label.Tbl.find_opt t.outputs l with Some f -> f | None -> A.bottom

  let before_instr t l i =
    let b = Func.find_block t.func l in
    let fact = ref (input t l) in
    for j = 0 to i - 1 do
      fact := A.instr b.Block.body.(j) !fact
    done;
    !fact

  let after_instr t l i =
    let b = Func.find_block t.func l in
    A.instr b.Block.body.(i) (before_instr t l i)

  let iterations t = t.iterations
end

module Backward (A : BACKWARD) = struct
  type t = {
    func : Func.t;
    inputs : A.fact Label.Tbl.t;  (* fact before the first instruction *)
    outputs : A.fact Label.Tbl.t; (* fact after the terminator *)
    iterations : int;
  }

  let block_transfer (b : Block.t) fact =
    let fact = A.terminator b.Block.term fact in
    let acc = ref fact in
    for i = Array.length b.Block.body - 1 downto 0 do
      acc := A.instr b.Block.body.(i) !acc
    done;
    !acc

  let solve func =
    let inputs = Label.Tbl.create 16 in
    let outputs = Label.Tbl.create 16 in
    let order = Func.postorder func in
    List.iter
      (fun l ->
        Label.Tbl.replace inputs l A.bottom;
        Label.Tbl.replace outputs l A.bottom)
      order;
    let iterations = ref 0 in
    let changed = ref true in
    while !changed do
      changed := false;
      incr iterations;
      List.iter
        (fun l ->
          let block = Func.find_block func l in
          let succs = Block.successors block.Block.term in
          let output =
            if succs = [] then A.exit func
            else
              List.fold_left
                (fun acc s ->
                  match Label.Tbl.find_opt inputs s with
                  | Some f -> A.join acc f
                  | None -> acc)
                A.bottom succs
          in
          Label.Tbl.replace outputs l output;
          let input = block_transfer block output in
          let old = Label.Tbl.find inputs l in
          if not (A.equal old input) then begin
            Label.Tbl.replace inputs l input;
            changed := true
          end)
        order
    done;
    { func; inputs; outputs; iterations = !iterations }

  let input t l =
    match Label.Tbl.find_opt t.inputs l with Some f -> f | None -> A.bottom

  let output t l =
    match Label.Tbl.find_opt t.outputs l with Some f -> f | None -> A.bottom

  let after_instr t l i =
    let b = Func.find_block t.func l in
    let fact = ref (A.terminator b.Block.term (output t l)) in
    for j = Array.length b.Block.body - 1 downto i + 1 do
      fact := A.instr b.Block.body.(j) !fact
    done;
    !fact

  let before_instr t l i =
    let b = Func.find_block t.func l in
    A.instr b.Block.body.(i) (after_instr t l i)

  let iterations t = t.iterations
end
