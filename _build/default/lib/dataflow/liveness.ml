open Tdfa_ir

module Domain = struct
  type fact = Var.Set.t

  let equal = Var.Set.equal
  let join = Var.Set.union
  let bottom = Var.Set.empty
  let exit (_ : Func.t) = Var.Set.empty

  let instr i fact =
    let without_def =
      match Instr.def i with Some d -> Var.Set.remove d fact | None -> fact
    in
    List.fold_left (fun acc v -> Var.Set.add v acc) without_def (Instr.uses i)

  let terminator term fact =
    List.fold_left (fun acc v -> Var.Set.add v acc) fact (Block.term_uses term)
end

module S = Solver.Backward (Domain)

type t = { solution : S.t; func : Func.t }

let analyze func = { solution = S.solve func; func }
let live_in t l = S.input t.solution l
let live_out t l = S.output t.solution l
let live_before_instr t l i = S.before_instr t.solution l i
let live_after_instr t l i = S.after_instr t.solution l i

let max_pressure t =
  let best = ref 0 in
  let consider s = best := max !best (Var.Set.cardinal s) in
  List.iter
    (fun (b : Block.t) ->
      let l = b.Block.label in
      consider (live_in t l);
      consider (live_out t l);
      Array.iteri (fun i _ -> consider (live_after_instr t l i)) b.Block.body)
    t.func.Func.blocks;
  !best

let iterations t = S.iterations t.solution
