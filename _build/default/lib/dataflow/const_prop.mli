(** Constant propagation (forward). A variable is constant at a point when
    every reaching definition assigns it the same known value. *)

open Tdfa_ir

module Value : sig
  type t =
    | Unknown  (** no definition seen yet (bottom) *)
    | Const of int
    | Varying  (** conflicting or non-constant definitions (top) *)

  val join : t -> t -> t
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

type t

val analyze : Func.t -> t
val value_in : t -> Label.t -> Var.t -> Value.t
val value_out : t -> Label.t -> Var.t -> Value.t

val eval_instr : Instr.t -> (Var.t -> Value.t) -> Value.t option
(** Value assigned by the instruction under the given environment, when it
    defines something. Exposed for the folding pass. *)
