open Tdfa_ir

module Def = struct
  type t = { label : Label.t; index : int; var : Var.t }

  let compare a b =
    match Label.compare a.label b.label with
    | 0 -> ( match Int.compare a.index b.index with 0 -> Var.compare a.var b.var | c -> c)
    | c -> c

  let pp ppf d =
    Format.fprintf ppf "%a@%a.%d" Var.pp d.var Label.pp d.label d.index
end

module Def_set = Set.Make (Def)

(* The transfer function needs the def site's position; the generic solver
   passes only the instruction. We instead precompute per-block gen/kill
   and run a bespoke forward fixpoint — simpler than threading positions
   through the functor. *)
type t = {
  reach_in : Def_set.t Label.Tbl.t;
  reach_out : Def_set.t Label.Tbl.t;
}

let analyze (func : Func.t) =
  let all_defs =
    Func.fold_instrs
      (fun acc label index i ->
        match Instr.def i with
        | Some var -> Def_set.add { Def.label; index; var } acc
        | None -> acc)
      Def_set.empty func
  in
  let gen = Label.Tbl.create 16 in
  let kill = Label.Tbl.create 16 in
  List.iter
    (fun (b : Block.t) ->
      let l = b.Block.label in
      (* Last definition of each variable in the block generates; every
         definition kills all other sites of the same variable. *)
      let g = ref Def_set.empty in
      let killed = ref Def_set.empty in
      Array.iteri
        (fun index i ->
          match Instr.def i with
          | None -> ()
          | Some var ->
            let site = { Def.label = l; index; var } in
            let same_var d = Var.equal d.Def.var var in
            g := Def_set.add site (Def_set.filter (fun d -> not (same_var d)) !g);
            killed :=
              Def_set.union !killed
                (Def_set.filter (fun d -> same_var d && d <> site) all_defs))
        b.Block.body;
      Label.Tbl.replace gen l !g;
      Label.Tbl.replace kill l !killed)
    func.Func.blocks;
  let reach_in = Label.Tbl.create 16 in
  let reach_out = Label.Tbl.create 16 in
  let order = Func.reverse_postorder func in
  List.iter
    (fun l ->
      Label.Tbl.replace reach_in l Def_set.empty;
      Label.Tbl.replace reach_out l Def_set.empty)
    order;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun l ->
        let input =
          List.fold_left
            (fun acc p ->
              match Label.Tbl.find_opt reach_out p with
              | Some s -> Def_set.union acc s
              | None -> acc)
            Def_set.empty (Func.predecessors func l)
        in
        Label.Tbl.replace reach_in l input;
        let out =
          Def_set.union (Label.Tbl.find gen l)
            (Def_set.diff input (Label.Tbl.find kill l))
        in
        if not (Def_set.equal out (Label.Tbl.find reach_out l)) then begin
          Label.Tbl.replace reach_out l out;
          changed := true
        end)
      order
  done;
  { reach_in; reach_out }

let reach_in t l =
  match Label.Tbl.find_opt t.reach_in l with Some s -> s | None -> Def_set.empty

let reach_out t l =
  match Label.Tbl.find_opt t.reach_out l with Some s -> s | None -> Def_set.empty

let defs_of_var_at t l v =
  Def_set.filter (fun d -> Var.equal d.Def.var v) (reach_in t l)
