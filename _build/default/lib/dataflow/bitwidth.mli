(** Bitwidth analysis after Stephenson et al. (PLDI 2000), the paper's
    reference point for "a more complex fact than one bit": each variable
    carries an integer interval, from which its required bitwidth is
    derived. Forward analysis with widening to guarantee termination. *)

open Tdfa_ir

module Interval : sig
  type t = Bot | Range of int * int  (** inclusive; [Bot] = no value yet *)

  val top : t
  val of_const : int -> t
  val join : t -> t -> t
  val widen : t -> t -> t
  val equal : t -> t -> bool
  val bitwidth : t -> int
  (** Bits needed to represent all values (sign bit included for negative
      ranges); [Bot] needs 0 bits, unbounded ranges need 64. *)

  val pp : Format.formatter -> t -> unit
end

type t

val analyze : Func.t -> t
val interval_in : t -> Label.t -> Var.t -> Interval.t
val interval_out : t -> Label.t -> Var.t -> Interval.t
val bitwidth_of : t -> Label.t -> Var.t -> int
(** Bitwidth of the variable's interval at block exit. *)
