open Tdfa_ir

module Expr = struct
  type t = Instr.binop * Var.t * Var.t

  let compare (o1, a1, b1) (o2, a2, b2) =
    match Stdlib.compare o1 o2 with
    | 0 -> ( match Var.compare a1 a2 with 0 -> Var.compare b1 b2 | c -> c)
    | c -> c

  let pp ppf (op, a, b) =
    Format.fprintf ppf "%s(%a, %a)" (Instr.string_of_binop op) Var.pp a Var.pp b
end

module Expr_set = Set.Make (Expr)

(* Meet is intersection, so "not yet computed" must act as top (the set of
   all expressions). We represent facts as [All | Known of set]. *)
module Domain = struct
  type fact = All | Known of Expr_set.t

  let equal a b =
    match (a, b) with
    | All, All -> true
    | Known x, Known y -> Expr_set.equal x y
    | All, Known _ | Known _, All -> false

  let join a b =
    match (a, b) with
    | All, x | x, All -> x
    | Known x, Known y -> Known (Expr_set.inter x y)

  let bottom = All

  let kill_var v set =
    Expr_set.filter (fun (_, a, b) -> not (Var.equal a v || Var.equal b v)) set

  let instr i fact =
    let set = match fact with All -> Expr_set.empty | Known s -> s in
    let set =
      match i with
      | Instr.Binop (op, _, s1, s2) -> Expr_set.add (op, s1, s2) set
      | Instr.Const _ | Instr.Unop _ | Instr.Load _ | Instr.Store _
      | Instr.Call _ | Instr.Nop ->
        set
    in
    let set = match Instr.def i with Some d -> kill_var d set | None -> set in
    Known set

  let terminator (_ : Block.terminator) fact = fact
  let entry (_ : Func.t) = Known Expr_set.empty
end

module S = Solver.Forward (Domain)

type t = S.t

let analyze = S.solve

let to_set = function Domain.All -> Expr_set.empty | Domain.Known s -> s
let available_in t l = to_set (S.input t l)
let available_out t l = to_set (S.output t l)
