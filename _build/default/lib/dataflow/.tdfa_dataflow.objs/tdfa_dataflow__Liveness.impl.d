lib/dataflow/liveness.ml: Array Block Func Instr List Solver Tdfa_ir Var
