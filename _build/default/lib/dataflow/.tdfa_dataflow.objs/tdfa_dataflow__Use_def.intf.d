lib/dataflow/use_def.mli: Func Label Loops Tdfa_ir Var
