lib/dataflow/solver.ml: Array Block Func Instr Label List Tdfa_ir
