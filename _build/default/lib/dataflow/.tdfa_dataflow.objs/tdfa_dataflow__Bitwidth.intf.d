lib/dataflow/bitwidth.mli: Format Func Label Tdfa_ir Var
