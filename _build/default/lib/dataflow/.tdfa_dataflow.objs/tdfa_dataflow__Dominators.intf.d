lib/dataflow/dominators.mli: Func Label Tdfa_ir
