lib/dataflow/use_def.ml: Block Func Instr Label List Loops Tdfa_ir Var
