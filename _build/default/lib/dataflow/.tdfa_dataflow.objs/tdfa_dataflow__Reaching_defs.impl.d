lib/dataflow/reaching_defs.ml: Array Block Format Func Instr Int Label List Set Tdfa_ir Var
