lib/dataflow/dominators.ml: Func Label List Tdfa_ir
