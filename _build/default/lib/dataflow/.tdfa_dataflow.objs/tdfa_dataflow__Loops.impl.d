lib/dataflow/loops.ml: Array Block Dominators Func Instr Label List Tdfa_ir Var
