lib/dataflow/loops.mli: Func Label Tdfa_ir
