lib/dataflow/available_exprs.ml: Block Format Func Instr Set Solver Stdlib Tdfa_ir Var
