lib/dataflow/bitwidth.ml: Array Block Format Func Instr Label List Tdfa_ir Var
