lib/dataflow/reaching_defs.mli: Format Func Label Set Tdfa_ir Var
