lib/dataflow/liveness.mli: Func Label Tdfa_ir Var
