lib/dataflow/const_prop.mli: Format Func Instr Label Tdfa_ir Var
