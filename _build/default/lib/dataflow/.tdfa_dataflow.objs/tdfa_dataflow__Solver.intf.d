lib/dataflow/solver.mli: Block Func Instr Label Tdfa_ir
