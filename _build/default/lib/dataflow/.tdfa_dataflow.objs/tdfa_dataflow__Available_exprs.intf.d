lib/dataflow/available_exprs.mli: Format Func Instr Label Set Tdfa_ir Var
