lib/dataflow/const_prop.ml: Block Format Func Instr List Solver Tdfa_ir Var
