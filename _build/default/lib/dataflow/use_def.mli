(** Use/def site index for a function, shared by the allocator, the
    criticality ranking and the optimization passes. *)

open Tdfa_ir

type site = { label : Label.t; index : int }

type t

val build : Func.t -> t
val defs : t -> Var.t -> site list
val uses : t -> Var.t -> site list

val static_use_count : t -> Var.t -> int
val weighted_access_count : t -> Loops.t -> Var.t -> float
(** Loop-frequency-weighted number of register-file accesses (uses plus
    defs) of the variable — the pre-register-allocation activity estimate
    the thermal analysis relies on. *)
