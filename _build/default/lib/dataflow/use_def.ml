open Tdfa_ir

type site = { label : Label.t; index : int }

type t = {
  func : Func.t;
  defs : site list Var.Tbl.t;
  uses : site list Var.Tbl.t;
}

let add tbl v site =
  let cur = match Var.Tbl.find_opt tbl v with Some l -> l | None -> [] in
  Var.Tbl.replace tbl v (site :: cur)

let build (func : Func.t) =
  let defs = Var.Tbl.create 64 in
  let uses = Var.Tbl.create 64 in
  Func.iter_instrs
    (fun label index i ->
      let site = { label; index } in
      (match Instr.def i with Some d -> add defs d site | None -> ());
      List.iter (fun v -> add uses v site) (Instr.uses i))
    func;
  List.iter
    (fun (b : Block.t) ->
      let site = { label = b.Block.label; index = Block.num_instrs b } in
      List.iter (fun v -> add uses v site) (Block.term_uses b.Block.term))
    func.Func.blocks;
  { func; defs; uses }

let defs t v =
  match Var.Tbl.find_opt t.defs v with Some l -> List.rev l | None -> []

let uses t v =
  match Var.Tbl.find_opt t.uses v with Some l -> List.rev l | None -> []

let static_use_count t v = List.length (uses t v)

let weighted_access_count t loop_info v =
  let weight_of site = Loops.frequency loop_info site.label in
  List.fold_left (fun acc s -> acc +. weight_of s) 0.0 (defs t v)
  +. List.fold_left (fun acc s -> acc +. weight_of s) 0.0 (uses t v)
