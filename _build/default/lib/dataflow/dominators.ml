open Tdfa_ir

type t = { func : Func.t; doms : Label.Set.t Label.Tbl.t }

let analyze (func : Func.t) =
  let order = Func.reverse_postorder func in
  let all = List.fold_left (fun s l -> Label.Set.add l s) Label.Set.empty order in
  let entry = Func.entry_label func in
  let doms = Label.Tbl.create 16 in
  List.iter
    (fun l ->
      Label.Tbl.replace doms l
        (if Label.equal l entry then Label.Set.singleton entry else all))
    order;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun l ->
        if not (Label.equal l entry) then begin
          let preds =
            List.filter (fun p -> Label.Tbl.mem doms p) (Func.predecessors func l)
          in
          let inter =
            match preds with
            | [] -> Label.Set.singleton l
            | p :: rest ->
              List.fold_left
                (fun acc q -> Label.Set.inter acc (Label.Tbl.find doms q))
                (Label.Tbl.find doms p) rest
          in
          let result = Label.Set.add l inter in
          if not (Label.Set.equal result (Label.Tbl.find doms l)) then begin
            Label.Tbl.replace doms l result;
            changed := true
          end
        end)
      order
  done;
  { func; doms }

let dominators t l =
  match Label.Tbl.find_opt t.doms l with
  | Some s -> s
  | None -> Label.Set.singleton l

let dominates t a b = Label.Set.mem a (dominators t b)

let idom t l =
  if Label.equal l (Func.entry_label t.func) then None
  else
    let strict = Label.Set.remove l (dominators t l) in
    (* The immediate dominator is the strict dominator dominated by all
       other strict dominators. *)
    Label.Set.fold
      (fun cand acc ->
        let dominated_by_all =
          Label.Set.for_all (fun other -> dominates t other cand) strict
        in
        if dominated_by_all then Some cand else acc)
      strict None
