(** Reaching definitions (forward). A definition site is identified by its
    block, instruction index and defined variable. *)

open Tdfa_ir

module Def : sig
  type t = { label : Label.t; index : int; var : Var.t }

  val compare : t -> t -> int
  val pp : Format.formatter -> t -> unit
end

module Def_set : Set.S with type elt = Def.t

type t

val analyze : Func.t -> t
val reach_in : t -> Label.t -> Def_set.t
val reach_out : t -> Label.t -> Def_set.t

val defs_of_var_at : t -> Label.t -> Var.t -> Def_set.t
(** Definition sites of one variable reaching the block entry. *)
