open Tdfa_ir

type loop = {
  header : Label.t;
  body : Label.Set.t;
  back_edges : Label.t list;
}

type t = { func : Func.t; loops : loop list; trips : int option Label.Tbl.t }

let default_trip = 16

(* Body of the natural loop of back edge latch->header: header plus every
   block reaching the latch without passing through the header. *)
let natural_body func header latches =
  let body = ref (Label.Set.singleton header) in
  let rec visit l =
    if not (Label.Set.mem l !body) then begin
      body := Label.Set.add l !body;
      List.iter visit (Func.predecessors func l)
    end
  in
  List.iter visit latches;
  !body

(* Best-effort constant value of a variable: its unique definition is a
   Const, or a move chain (of bounded depth) ending at one — splitting
   passes introduce such copies of loop constants. *)
let const_value func v =
  let unique_def v =
    let defs =
      Func.fold_instrs
        (fun acc _ _ i ->
          match Instr.def i with
          | Some d when Var.equal d v -> i :: acc
          | Some _ | None -> acc)
        [] func
    in
    match defs with [ d ] -> Some d | _ -> None
  in
  let rec resolve v depth =
    if depth = 0 then None
    else
      match unique_def v with
      | Some (Instr.Const (_, k)) -> Some k
      | Some (Instr.Unop (Instr.Mov, _, s)) -> resolve s (depth - 1)
      | Some (Instr.Unop _ | Instr.Binop _ | Instr.Load _ | Instr.Store _
             | Instr.Call _ | Instr.Nop)
      | None ->
        None
  in
  resolve v 4

(* Constant initial value of the induction variable: among its defs, the
   unique Const one. *)
let const_init func v =
  let consts =
    Func.fold_instrs
      (fun acc _ _ i ->
        match i with
        | Instr.Const (d, k) when Var.equal d v -> k :: acc
        | Instr.Const _ | Instr.Unop _ | Instr.Binop _ | Instr.Load _
        | Instr.Store _ | Instr.Call _ | Instr.Nop ->
          acc)
      [] func
  in
  match consts with [ k ] -> Some k | _ -> None

(* Constant step: a unique [i <- i + s] (or [i <- i - s]) inside the loop
   body with [s] constant. *)
let const_step func body v =
  let steps =
    Func.fold_instrs
      (fun acc label _ i ->
        if not (Label.Set.mem label body) then acc
        else
          match i with
          | Instr.Binop (Instr.Add, d, s1, s2)
            when Var.equal d v && Var.equal s1 v -> (
            match const_value func s2 with Some k -> k :: acc | None -> acc)
          | Instr.Binop (Instr.Sub, d, s1, s2)
            when Var.equal d v && Var.equal s1 v -> (
            match const_value func s2 with Some k -> -k :: acc | None -> acc)
          | Instr.Const _ | Instr.Unop _ | Instr.Binop _ | Instr.Load _
          | Instr.Store _ | Instr.Call _ | Instr.Nop ->
            acc)
      [] func
  in
  match steps with [ k ] -> Some k | _ -> None

(* Recover the [while (i < n)] idiom from the header: the branch condition
   defined in the header by [slt i n] (or [sle]). *)
let estimate_trip func (l : loop) =
  let header = Func.find_block func l.header in
  match header.Block.term with
  | Block.Branch (cond, _, _) ->
    let compare_instr =
      Array.fold_left
        (fun acc i ->
          match i with
          | Instr.Binop ((Instr.Slt | Instr.Sle), d, _, _)
            when Var.equal d cond ->
            Some i
          | Instr.Const _ | Instr.Unop _ | Instr.Binop _ | Instr.Load _
          | Instr.Store _ | Instr.Call _ | Instr.Nop ->
            acc)
        None header.Block.body
    in
    (match compare_instr with
     | Some (Instr.Binop (op, _, iv, bound)) -> (
       match (const_init func iv, const_value func bound, const_step func l.body iv) with
       | Some k0, Some kn, Some ks when ks > 0 && kn > k0 ->
         let span = kn - k0 + (match op with Instr.Sle -> 1 | _ -> 0) in
         Some (max 1 ((span + ks - 1) / ks))
       | _, _, _ -> None)
     | Some _ | None -> None)
  | Block.Jump _ | Block.Return _ -> None

let analyze (func : Func.t) =
  let dom = Dominators.analyze func in
  (* Back edges: u -> h where h dominates u. Group latches per header. *)
  let latches_of = Label.Tbl.create 8 in
  List.iter
    (fun (b : Block.t) ->
      List.iter
        (fun succ ->
          if Dominators.dominates dom succ b.Block.label then begin
            let cur =
              match Label.Tbl.find_opt latches_of succ with
              | Some l -> l
              | None -> []
            in
            Label.Tbl.replace latches_of succ (b.Block.label :: cur)
          end)
        (Block.successors b.Block.term))
    func.Func.blocks;
  let loops =
    Label.Tbl.fold
      (fun header latches acc ->
        { header; body = natural_body func header latches; back_edges = latches }
        :: acc)
      latches_of []
  in
  (* Stable order: by header label, for reproducible reports. *)
  let loops =
    List.sort (fun a b -> Label.compare a.header b.header) loops
  in
  let trips = Label.Tbl.create 8 in
  List.iter
    (fun l -> Label.Tbl.replace trips l.header (estimate_trip func l))
    loops;
  { func; loops; trips }

let loops t = t.loops

let depth t l =
  List.length (List.filter (fun lp -> Label.Set.mem l lp.body) t.loops)

let exact_trip_count t header =
  match Label.Tbl.find_opt t.trips header with
  | Some k -> k
  | None -> None

let trip_count t header =
  match exact_trip_count t header with Some k -> k | None -> default_trip

let frequency t l =
  List.fold_left
    (fun acc lp ->
      if Label.Set.mem l lp.body then acc *. float_of_int (trip_count t lp.header)
      else acc)
    1.0 t.loops
