(** Liveness analysis (backward). Two variables interfere — and thus need
    distinct registers — exactly when their live ranges overlap (§2 of the
    paper). *)

open Tdfa_ir

type t

val analyze : Func.t -> t

val live_in : t -> Label.t -> Var.Set.t
(** Variables live before the first instruction of the block. *)

val live_out : t -> Label.t -> Var.Set.t
(** Variables live after the terminator. *)

val live_before_instr : t -> Label.t -> int -> Var.Set.t
val live_after_instr : t -> Label.t -> int -> Var.Set.t

val max_pressure : t -> int
(** Largest number of simultaneously live variables at any program point —
    the function's register pressure. *)

val iterations : t -> int
