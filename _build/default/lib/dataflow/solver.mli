(** Generic iterative data-flow solver (worklist algorithm) over the IR
    CFG, in the classic Cooper–Torczon formulation the paper builds on.

    Clients provide a join-semilattice of facts and per-instruction
    transfer functions; the solver returns the fixpoint as per-block
    input/output facts plus replay helpers for per-instruction facts. *)

open Tdfa_ir

module type DOMAIN = sig
  type fact

  val equal : fact -> fact -> bool
  val join : fact -> fact -> fact
  val bottom : fact
  (** Identity of [join]; the initial fact everywhere. *)
end

module type FORWARD = sig
  include DOMAIN

  val entry : Func.t -> fact
  (** Fact holding on entry to the function. *)

  val instr : Instr.t -> fact -> fact
  val terminator : Block.terminator -> fact -> fact
end

module type BACKWARD = sig
  include DOMAIN

  val exit : Func.t -> fact
  (** Fact holding after every [Return]. *)

  val instr : Instr.t -> fact -> fact
  val terminator : Block.terminator -> fact -> fact
end

module Forward (A : FORWARD) : sig
  type t

  val solve : Func.t -> t
  val input : t -> Label.t -> A.fact
  (** Fact before the first instruction of the block. *)

  val output : t -> Label.t -> A.fact
  (** Fact after the terminator. *)

  val before_instr : t -> Label.t -> int -> A.fact
  val after_instr : t -> Label.t -> int -> A.fact
  val iterations : t -> int
  (** Number of passes over the CFG before the fixpoint. *)
end

module Backward (A : BACKWARD) : sig
  type t

  val solve : Func.t -> t
  val input : t -> Label.t -> A.fact
  (** Fact before the first instruction (the block's live-in style fact). *)

  val output : t -> Label.t -> A.fact
  (** Fact after the terminator (joined from successors). *)

  val before_instr : t -> Label.t -> int -> A.fact
  val after_instr : t -> Label.t -> int -> A.fact
  val iterations : t -> int
end
