(** Dominator computation (iterative data-flow formulation). *)

open Tdfa_ir

type t

val analyze : Func.t -> t

val dominators : t -> Label.t -> Label.Set.t
(** All blocks dominating [l], including [l] itself. *)

val dominates : t -> Label.t -> Label.t -> bool
(** [dominates t a b] holds when [a] dominates [b]. *)

val idom : t -> Label.t -> Label.t option
(** Immediate dominator; [None] for the entry block. *)
