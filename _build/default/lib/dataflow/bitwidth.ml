open Tdfa_ir

module Interval = struct
  type t = Bot | Range of int * int

  (* A pragmatic "infinite" bound that still survives arithmetic without
     overflow in the transfer functions below. *)
  let inf = 1 lsl 40
  let top = Range (-inf, inf)
  let of_const k = Range (k, k)
  let clamp v = if v > inf then inf else if v < -inf then -inf else v

  let join a b =
    match (a, b) with
    | Bot, x | x, Bot -> x
    | Range (l1, h1), Range (l2, h2) -> Range (min l1 l2, max h1 h2)

  let widen old_fact new_fact =
    match (old_fact, new_fact) with
    | Bot, x -> x
    | x, Bot -> x
    | Range (l1, h1), Range (l2, h2) ->
      Range ((if l2 < l1 then -inf else l1), if h2 > h1 then inf else h1)

  let equal a b =
    match (a, b) with
    | Bot, Bot -> true
    | Range (l1, h1), Range (l2, h2) -> l1 = l2 && h1 = h2
    | Bot, Range _ | Range _, Bot -> false

  let bits_for v =
    let v = abs v in
    let rec go acc n = if n = 0 then acc else go (acc + 1) (n lsr 1) in
    go 0 v

  (* Two's complement: a negative bound of -2^k still fits in k magnitude
     bits plus the sign. *)
  let bitwidth = function
    | Bot -> 0
    | Range (l, h) ->
      if l <= -inf || h >= inf then 64
      else if l < 0 then
        1 + max (bits_for h) (bits_for (abs l - 1))
      else max 1 (bits_for h)

  let pp ppf = function
    | Bot -> Format.fprintf ppf "bot"
    | Range (l, h) ->
      if l <= -inf && h >= inf then Format.fprintf ppf "top"
      else Format.fprintf ppf "[%d, %d]" l h
end

(* Facts map variables to intervals; missing variable = Bot. *)
module Domain = struct
  type fact = Interval.t Var.Map.t

  let equal = Var.Map.equal Interval.equal

  let join a b =
    Var.Map.union (fun _ i1 i2 -> Some (Interval.join i1 i2)) a b

  let bottom = Var.Map.empty

  let get v fact =
    match Var.Map.find_opt v fact with Some i -> i | None -> Interval.Bot

  let binop_interval op a b =
    let open Interval in
    match (a, b) with
    | Bot, _ | _, Bot -> Bot
    | Range (l1, h1), Range (l2, h2) -> (
      match op with
      | Instr.Add -> Range (clamp (l1 + l2), clamp (h1 + h2))
      | Instr.Sub -> Range (clamp (l1 - h2), clamp (h1 - l2))
      | Instr.Mul ->
        let products = [ l1 * l2; l1 * h2; h1 * l2; h1 * h2 ] in
        Range
          ( clamp (List.fold_left min max_int products),
            clamp (List.fold_left max min_int products) )
      | Instr.Div | Instr.Rem | Instr.Shr ->
        (* Result magnitude never exceeds the dividend's. *)
        let m = max (abs l1) (abs h1) in
        Range (-m, m)
      | Instr.And ->
        if l1 >= 0 && l2 >= 0 then Range (0, min h1 h2) else top
      | Instr.Or | Instr.Xor ->
        if l1 >= 0 && l2 >= 0 then
          let m = max h1 h2 in
          (* Upper bound: next power of two minus one. *)
          let rec pow2m1 p = if p > m then p else pow2m1 ((p * 2) + 1) in
          Range (0, clamp (pow2m1 1))
        else top
      | Instr.Shl -> top
      | Instr.Slt | Instr.Sle | Instr.Seq | Instr.Sne -> Range (0, 1))

  let instr i fact =
    match i with
    | Instr.Const (d, k) -> Var.Map.add d (Interval.of_const k) fact
    | Instr.Unop (Instr.Mov, d, s) -> Var.Map.add d (get s fact) fact
    | Instr.Unop (Instr.Neg, d, s) ->
      let iv =
        match get s fact with
        | Interval.Bot -> Interval.Bot
        | Interval.Range (l, h) -> Interval.Range (-h, -l)
      in
      Var.Map.add d iv fact
    | Instr.Unop (Instr.Not, d, _) -> Var.Map.add d Interval.top fact
    | Instr.Binop (op, d, s1, s2) ->
      Var.Map.add d (binop_interval op (get s1 fact) (get s2 fact)) fact
    | Instr.Load (d, _, _) -> Var.Map.add d Interval.top fact
    | Instr.Call (Some d, _, _) -> Var.Map.add d Interval.top fact
    | Instr.Call (None, _, _) | Instr.Store _ | Instr.Nop -> fact

  let entry (f : Func.t) =
    List.fold_left
      (fun acc p -> Var.Map.add p Interval.top acc)
      Var.Map.empty f.Func.params
end

(* Bespoke fixpoint with widening after a few join rounds per block. *)
type t = {
  inputs : Domain.fact Label.Tbl.t;
  outputs : Domain.fact Label.Tbl.t;
}

let widen_rounds = 4

let analyze (func : Func.t) =
  let inputs = Label.Tbl.create 16 in
  let outputs = Label.Tbl.create 16 in
  let visits = Label.Tbl.create 16 in
  let order = Func.reverse_postorder func in
  List.iter
    (fun l ->
      Label.Tbl.replace inputs l Domain.bottom;
      Label.Tbl.replace outputs l Domain.bottom;
      Label.Tbl.replace visits l 0)
    order;
  let entry = Func.entry_label func in
  let transfer (b : Block.t) fact =
    Array.fold_left (fun acc i -> Domain.instr i acc) fact b.Block.body
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun l ->
        let input =
          if Label.equal l entry then Domain.entry func
          else
            List.fold_left
              (fun acc p ->
                match Label.Tbl.find_opt outputs p with
                | Some o -> Domain.join acc o
                | None -> acc)
              Domain.bottom (Func.predecessors func l)
        in
        Label.Tbl.replace inputs l input;
        let out = transfer (Func.find_block func l) input in
        let old = Label.Tbl.find outputs l in
        let rounds = Label.Tbl.find visits l in
        let out =
          if rounds >= widen_rounds then
            Var.Map.union
              (fun _ o n -> Some (Interval.widen o n))
              old out
          else out
        in
        if not (Domain.equal old out) then begin
          Label.Tbl.replace outputs l out;
          Label.Tbl.replace visits l (rounds + 1);
          changed := true
        end)
      order
  done;
  { inputs; outputs }

let find tbl l v =
  match Label.Tbl.find_opt tbl l with
  | None -> Interval.Bot
  | Some fact -> (
    match Var.Map.find_opt v fact with Some i -> i | None -> Interval.Bot)

let interval_in t l v = find t.inputs l v
let interval_out t l v = find t.outputs l v
let bitwidth_of t l v = Interval.bitwidth (interval_out t l v)
