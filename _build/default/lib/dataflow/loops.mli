(** Natural-loop detection and static execution-frequency estimates.

    The thermal analysis weights heating by how often an instruction is
    expected to execute; loop depth is the standard compile-time proxy. *)

open Tdfa_ir

type loop = {
  header : Label.t;
  body : Label.Set.t;  (** includes the header *)
  back_edges : Label.t list;  (** sources of the latch edges *)
}

type t

val analyze : Func.t -> t
val loops : t -> loop list

val depth : t -> Label.t -> int
(** Loop-nesting depth of the block; 0 outside any loop. *)

val trip_count : t -> Label.t -> int
(** Best-effort static trip count of the innermost loop headed at the
    given label, recovered from the [i < const] / [i += const] idiom;
    falls back to {!default_trip} when the bound is not recognisable. *)

val exact_trip_count : t -> Label.t -> int option
(** The recovered trip count, or [None] when the idiom did not match —
    transformations that must not guess (e.g. unrolling) use this. *)

val default_trip : int

val frequency : t -> Label.t -> float
(** Estimated executions of the block per function invocation: the product
    of trip counts of all enclosing loops (1.0 outside loops). *)
