(** Available expressions (forward, meet = intersection). Demonstrates the
    all-paths style of analysis; used by tests and by the scheduler to
    detect redundant recomputation. *)

open Tdfa_ir

module Expr : sig
  type t = Instr.binop * Var.t * Var.t

  val compare : t -> t -> int
  val pp : Format.formatter -> t -> unit
end

module Expr_set : Set.S with type elt = Expr.t

type t

val analyze : Func.t -> t

val available_in : t -> Label.t -> Expr_set.t
(** Expressions available on entry to the block along all paths. The entry
    block has none. *)

val available_out : t -> Label.t -> Expr_set.t
