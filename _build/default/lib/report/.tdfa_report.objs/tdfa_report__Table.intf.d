lib/report/table.mli:
