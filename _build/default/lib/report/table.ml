type t = { headers : string list; mutable rows_rev : string list list }

let create ~headers = { headers; rows_rev = [] }

let add_row t row =
  if List.length row <> List.length t.headers then
    invalid_arg "Table.add_row: arity mismatch";
  t.rows_rev <- row :: t.rows_rev

let rows t = List.rev t.rows_rev

let to_string t =
  let all = t.headers :: rows t in
  let ncols = List.length t.headers in
  let width c =
    List.fold_left
      (fun acc row -> max acc (String.length (List.nth row c)))
      0 all
  in
  let widths = List.init ncols width in
  let pad s w = s ^ String.make (w - String.length s) ' ' in
  let line row =
    String.concat "  " (List.mapi (fun c cell -> pad cell (List.nth widths c)) row)
  in
  let rule =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (line t.headers);
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (line row);
      Buffer.add_char buf '\n')
    (rows t);
  Buffer.contents buf

let print t = print_string (to_string t)

let fk v = Printf.sprintf "%.2f" v
let f2 = fk
let f3 v = Printf.sprintf "%.3f" v
let pct v = Printf.sprintf "%.1f%%" v

let csv t =
  let escape cell =
    if String.contains cell ',' then "\"" ^ cell ^ "\"" else cell
  in
  let line row = String.concat "," (List.map escape row) in
  String.concat "\n" (line t.headers :: List.map line (rows t)) ^ "\n"
