(** Fixed-width ASCII tables for the experiment reports printed by the
    bench harness and the CLI. *)

type t

val create : headers:string list -> t
val add_row : t -> string list -> unit
(** @raise Invalid_argument on arity mismatch with the headers. *)

val to_string : t -> string
(** Columns are padded to their widest entry; a rule separates the
    header. *)

val print : t -> unit

(** {2 Cell formatting helpers} *)

val fk : float -> string
(** Temperature in kelvin, 2 decimals. *)

val f2 : float -> string
val f3 : float -> string
val pct : float -> string

val csv : t -> string
(** The same table as comma-separated values. *)
