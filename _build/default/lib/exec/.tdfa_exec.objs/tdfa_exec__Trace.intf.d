lib/exec/trace.mli: Tdfa_ir Var
