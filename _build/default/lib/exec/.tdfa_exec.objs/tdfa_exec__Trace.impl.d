lib/exec/trace.ml: Array Tdfa_ir Var
