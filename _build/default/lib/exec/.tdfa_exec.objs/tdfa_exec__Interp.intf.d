lib/exec/interp.mli: Func Label Program Tdfa_ir Trace
