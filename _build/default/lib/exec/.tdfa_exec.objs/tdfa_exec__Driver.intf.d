lib/exec/driver.mli: Params Rc_model Simulator Tdfa_ir Tdfa_thermal Trace Var
