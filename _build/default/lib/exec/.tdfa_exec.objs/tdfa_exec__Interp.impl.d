lib/exec/interp.ml: Array Block Func Hashtbl Instr Int Label List Option Program Tdfa_ir Trace Var
