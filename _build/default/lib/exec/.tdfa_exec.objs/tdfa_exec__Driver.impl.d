lib/exec/driver.ml: Array Params Rc_model Simulator Tdfa_thermal Trace
