open Tdfa_ir

exception Out_of_fuel of int
exception Runtime_error of string

type outcome = {
  return_value : int option;
  cycles : int;
  trace : Trace.t;
  exec_counts : int Label.Map.t;
  memory : (int * int) list;
}

type state = {
  program : Program.t;
  memory : (int, int) Hashtbl.t;
  mutable cycle : int;
  fuel : int;
  mutable depth : int;
  mutable events_rev : Trace.event list;
  mutable exec_counts : int Label.Map.t;
}

(* Recursion is legal in the IR (and expressible in TC); bound the call
   depth so a runaway recursion raises a clean error instead of
   exhausting the host stack. *)
let max_call_depth = 10_000

(* Deterministic contents for uninitialised memory, so kernels that read
   arrays before writing them stay reproducible. *)
let memory_pattern addr = (addr * 2654435761) land 0xFFFF

let mem_read st addr =
  match Hashtbl.find_opt st.memory addr with
  | Some v -> v
  | None -> memory_pattern addr

let mem_write st addr v = Hashtbl.replace st.memory addr v

let record st var kind =
  st.events_rev <- { Trace.cycle = st.cycle; var; kind } :: st.events_rev

let tick st =
  st.cycle <- st.cycle + 1;
  if st.cycle > st.fuel then raise (Out_of_fuel st.cycle)

let bump_block st l =
  let cur =
    match Label.Map.find_opt l st.exec_counts with Some k -> k | None -> 0
  in
  st.exec_counts <- Label.Map.add l (cur + 1) st.exec_counts

let env_read env st v =
  match Var.Tbl.find_opt env v with
  | Some x ->
    record st v Trace.Read;
    x
  | None -> raise (Runtime_error ("read of undefined variable " ^ Var.to_string v))

let env_write env st v x =
  record st v Trace.Write;
  Var.Tbl.replace env v x

let rec exec_call st name args =
  match Program.find st.program name with
  | None -> raise (Runtime_error ("call to unknown function @" ^ name))
  | Some callee ->
    st.depth <- st.depth + 1;
    if st.depth > max_call_depth then
      raise (Runtime_error "call depth exceeded (runaway recursion?)");
    let result = exec_func st callee args in
    st.depth <- st.depth - 1;
    result

and exec_func st (f : Func.t) args =
  let env = Var.Tbl.create 64 in
  List.iteri
    (fun i p ->
      let v = match List.nth_opt args i with Some x -> x | None -> 0 in
      Var.Tbl.replace env p v)
    f.Func.params;
  let rec run_block label =
    bump_block st label;
    let block = Func.find_block f label in
    exec_body env block
  and exec_body env (block : Block.t) =
    Array.iter (exec_instr env) block.Block.body;
    tick st;
    match block.Block.term with
    | Block.Jump l -> run_block l
    | Block.Branch (c, t, e) ->
      let cv = env_read env st c in
      run_block (if cv <> 0 then t else e)
    | Block.Return (Some v) -> Some (env_read env st v)
    | Block.Return None -> None
  and exec_instr env i =
    tick st;
    match i with
    | Instr.Const (d, k) -> env_write env st d k
    | Instr.Unop (op, d, s) ->
      let x = env_read env st s in
      env_write env st d (Instr.eval_unop op x)
    | Instr.Binop (op, d, s1, s2) ->
      let x = env_read env st s1 in
      let y = env_read env st s2 in
      env_write env st d (Instr.eval_binop op x y)
    | Instr.Load (d, base, off) ->
      let b = env_read env st base in
      tick st;  (* memory wait state *)
      env_write env st d (mem_read st (b + off))
    | Instr.Store (v, base, off) ->
      let x = env_read env st v in
      let b = env_read env st base in
      tick st;  (* memory wait state *)
      mem_write st (b + off) x
    | Instr.Call (d, name, arg_vars) ->
      let args = List.map (fun v -> env_read env st v) arg_vars in
      let result = exec_call st name args in
      (match d with
       | Some d -> env_write env st d (Option.value result ~default:0)
       | None -> ())
    | Instr.Nop -> ()
  in
  run_block (Func.entry_label f)

let run ?(fuel = 2_000_000) ?(args = []) program name =
  let st =
    {
      program;
      memory = Hashtbl.create 1024;
      cycle = 0;
      fuel;
      depth = 0;
      events_rev = [];
      exec_counts = Label.Map.empty;
    }
  in
  let return_value = exec_call st name args in
  let memory =
    Hashtbl.fold (fun addr v acc -> (addr, v) :: acc) st.memory []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  {
    return_value;
    cycles = st.cycle;
    trace = Trace.of_events ~cycles:st.cycle (List.rev st.events_rev);
    exec_counts = st.exec_counts;
    memory;
  }

let run_func ?fuel ?args (f : Func.t) =
  run ?fuel ?args (Program.of_funcs [ f ]) f.Func.name
