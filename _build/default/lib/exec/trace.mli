(** Cycle-stamped register-file access traces — the interface between
    program execution and the thermal model. *)

open Tdfa_ir

type kind = Read | Write

type event = { cycle : int; var : Var.t; kind : kind }

type t

val of_events : cycles:int -> event list -> t
(** Events must be in nondecreasing cycle order. *)

val cycles : t -> int
val length : t -> int
val iter : (event -> unit) -> t -> unit
val events : t -> event array

val access_counts :
  t ->
  cell_of_var:(Var.t -> int option) ->
  num_cells:int ->
  (int array * int array)
(** Whole-trace totals: (reads per cell, writes per cell). Events whose
    variable has no cell (spilled to memory) are dropped. *)

val windowed_counts :
  t ->
  cell_of_var:(Var.t -> int option) ->
  num_cells:int ->
  window_cycles:int ->
  (int array * int array) array
(** Per-window totals; the last window may be partial. An empty trace
    yields a single empty window. *)

val per_var_counts : t -> int Var.Map.t
(** Total accesses (reads + writes) per variable. *)
