(** Deterministic IR interpreter. Executes a program and records every
    register-file access with its cycle, producing the ground-truth trace
    the thermal simulator consumes.

    Memory is a flat word-addressed store initialised to a deterministic
    pseudo-random pattern, so kernels reading uninitialised arrays still
    behave reproducibly. Each instruction (and each taken terminator)
    costs one cycle; loads and stores cost one extra wait-state cycle, so
    spilling and promotion trade performance the way the paper assumes. *)

open Tdfa_ir

exception Out_of_fuel of int
(** Raised when execution exceeds the fuel budget (cycles). *)

exception Runtime_error of string
(** Unknown callee, missing variable and similar faults. *)

type outcome = {
  return_value : int option;
  cycles : int;
  trace : Trace.t;
  exec_counts : int Label.Map.t;  (** executions of each basic block *)
  memory : (int * int) list;
      (** final memory contents as sorted (address, value) bindings; used
          to check that optimization passes preserve semantics (spill
          slots live at or above {i 1_000_000} and can be filtered out) *)
}

val run : ?fuel:int -> ?args:int list -> Program.t -> string -> outcome
(** [run program name] executes function [name]. Missing arguments default
    to 0. Default [fuel] is 2_000_000 cycles. *)

val run_func : ?fuel:int -> ?args:int list -> Func.t -> outcome
(** Run a single function as a one-function program. *)
