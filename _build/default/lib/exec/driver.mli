(** Glue from an execution trace to the RC thermal simulator: bins the
    trace into fixed windows, converts access counts to dynamic power and
    integrates. This is the "measured" side of every experiment. *)

open Tdfa_ir
open Tdfa_thermal

val default_window_cycles : int

val power_of_counts :
  Params.t -> window_cycles:int -> reads:int array -> writes:int array -> float array
(** Dynamic power per cell over one window. *)

val simulate_trace :
  ?window_cycles:int ->
  Rc_model.t ->
  Trace.t ->
  cell_of_var:(Var.t -> int option) ->
  Simulator.t
(** Fresh simulator run over the whole trace; returns it with final
    temperatures and peak history populated. *)

val steady_temps :
  ?leak_mask:bool array ->
  Rc_model.t ->
  Trace.t ->
  cell_of_var:(Tdfa_ir.Var.t -> int option) ->
  float array
(** Steady-state temperatures under the trace's *average* power — the
    long-run thermal map of the access pattern (what Fig. 1 shows).
    Includes one leakage feedback iteration. [leak_mask.(i) = false]
    power-gates cell [i]: it contributes no leakage (used by the
    bank-gating experiment, §4's compromise with switched-off banks). *)
