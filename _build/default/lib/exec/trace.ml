open Tdfa_ir

type kind = Read | Write

type event = { cycle : int; var : Var.t; kind : kind }

type t = { events : event array; cycles : int }

let of_events ~cycles events =
  let events = Array.of_list events in
  Array.iteri
    (fun i e ->
      if i > 0 then assert (events.(i - 1).cycle <= e.cycle))
    events;
  { events; cycles }

let cycles t = t.cycles
let length t = Array.length t.events
let iter f t = Array.iter f t.events
let events t = Array.copy t.events

let access_counts t ~cell_of_var ~num_cells =
  let reads = Array.make num_cells 0 in
  let writes = Array.make num_cells 0 in
  iter
    (fun e ->
      match cell_of_var e.var with
      | None -> ()
      | Some cell ->
        assert (cell >= 0 && cell < num_cells);
        (match e.kind with
         | Read -> reads.(cell) <- reads.(cell) + 1
         | Write -> writes.(cell) <- writes.(cell) + 1))
    t;
  (reads, writes)

let windowed_counts t ~cell_of_var ~num_cells ~window_cycles =
  assert (window_cycles > 0);
  let num_windows = max 1 ((t.cycles + window_cycles - 1) / window_cycles) in
  let windows =
    Array.init num_windows (fun _ -> (Array.make num_cells 0, Array.make num_cells 0))
  in
  iter
    (fun e ->
      match cell_of_var e.var with
      | None -> ()
      | Some cell ->
        let w = min (num_windows - 1) (e.cycle / window_cycles) in
        let reads, writes = windows.(w) in
        (match e.kind with
         | Read -> reads.(cell) <- reads.(cell) + 1
         | Write -> writes.(cell) <- writes.(cell) + 1))
    t;
  windows

let per_var_counts t =
  Array.fold_left
    (fun acc e ->
      let cur = match Var.Map.find_opt e.var acc with Some k -> k | None -> 0 in
      Var.Map.add e.var (cur + 1) acc)
    Var.Map.empty t.events
