type terminator =
  | Jump of Label.t
  | Branch of Var.t * Label.t * Label.t
  | Return of Var.t option

type t = { label : Label.t; body : Instr.t array; term : terminator }

let make label body term = { label; body = Array.of_list body; term }

let successors = function
  | Jump l -> [ l ]
  | Branch (_, t, f) -> [ t; f ]
  | Return _ -> []

let term_uses = function
  | Jump _ -> []
  | Branch (c, _, _) -> [ c ]
  | Return (Some v) -> [ v ]
  | Return None -> []

let num_instrs b = Array.length b.body
let map_body f b = { b with body = Array.map f b.body }
let with_body b body = { b with body = Array.of_list body }

let map_term_labels f = function
  | Jump l -> Jump (f l)
  | Branch (c, t, e) -> Branch (c, f t, f e)
  | Return v -> Return v

let pp_term ppf = function
  | Jump l -> Format.fprintf ppf "jmp %a" Label.pp l
  | Branch (c, t, f) ->
    Format.fprintf ppf "br %a, %a, %a" Var.pp c Label.pp t Label.pp f
  | Return (Some v) -> Format.fprintf ppf "ret %a" Var.pp v
  | Return None -> Format.fprintf ppf "ret"

let pp ppf b =
  Format.fprintf ppf "%a:@\n" Label.pp b.label;
  Array.iter (fun i -> Format.fprintf ppf "  %a@\n" Instr.pp i) b.body;
  Format.fprintf ppf "  %a" pp_term b.term
