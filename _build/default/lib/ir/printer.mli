(** Textual rendering of the IR; the inverse of {!Parser}. *)

val func_to_string : Func.t -> string
val program_to_string : Program.t -> string
