let func_to_string f = Format.asprintf "%a" Func.pp f
let program_to_string p = Format.asprintf "%a" Program.pp p
