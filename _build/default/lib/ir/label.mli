(** Basic-block labels. *)

type t

val of_string : string -> t
val to_string : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val pp : Format.formatter -> t -> unit
(** Prints the bare label name. *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
module Tbl : Hashtbl.S with type key = t
