type t = string

let of_string s =
  assert (String.length s > 0);
  s

let to_string l = l
let equal = String.equal
let compare = String.compare
let hash = Hashtbl.hash
let pp = Format.pp_print_string

module Set = Set.Make (String)
module Map = Map.Make (String)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
