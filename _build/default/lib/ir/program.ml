type t = { funcs : Func.t list }

let of_funcs funcs =
  if funcs = [] then invalid_arg "Program.of_funcs: empty";
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (f : Func.t) ->
      if Hashtbl.mem seen f.Func.name then
        invalid_arg ("Program.of_funcs: duplicate function " ^ f.Func.name);
      Hashtbl.add seen f.Func.name ())
    funcs;
  { funcs }

let funcs p = p.funcs

let find p name =
  List.find_opt (fun (f : Func.t) -> String.equal f.Func.name name) p.funcs

let main p =
  match find p "main" with
  | Some f -> f
  | None -> ( match p.funcs with f :: _ -> f | [] -> assert false)

let pp ppf p =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf "@\n@\n")
    Func.pp ppf p.funcs
