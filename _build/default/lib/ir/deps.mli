(** Intra-block data-dependence DAG, shared by the scalar scheduler and
    the VLIW bundler. Conservative: RAW/WAR/WAW on variables, stores and
    calls order memory, calls order everything. *)

val block_preds : Instr.t array -> int list array
(** [preds.(j)] lists the earlier indices that must execute before [j].
    A valid schedule is any topological order. *)

val is_topological : Instr.t array -> int list -> bool
(** Whether the permutation (a list of indices) respects the DAG. *)
