lib/ir/label.ml: Format Hashtbl Map Set String
