lib/ir/instr.ml: Format List Option String Var
