lib/ir/instr.mli: Format Var
