lib/ir/printer.ml: Format Func Program
