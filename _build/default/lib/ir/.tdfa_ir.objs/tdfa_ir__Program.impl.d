lib/ir/program.ml: Format Func Hashtbl List String
