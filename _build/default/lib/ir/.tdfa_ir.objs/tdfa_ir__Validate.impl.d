lib/ir/validate.ml: Block Func Instr Label List Printf String Var
