lib/ir/parser.mli: Func Program
