lib/ir/var.ml: Format Hashtbl Map Set String
