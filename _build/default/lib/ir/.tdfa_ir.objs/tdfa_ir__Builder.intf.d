lib/ir/builder.mli: Func Instr Label Var
