lib/ir/func.mli: Block Format Instr Label Var
