lib/ir/deps.mli: Instr
