lib/ir/parser.ml: Block Func Instr Label List Printf Program String Var
