lib/ir/block.ml: Array Format Instr Label Var
