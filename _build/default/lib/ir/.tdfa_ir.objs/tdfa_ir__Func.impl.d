lib/ir/func.ml: Array Block Format Instr Label List Printf Var
