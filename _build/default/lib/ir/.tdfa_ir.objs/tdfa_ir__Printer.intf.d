lib/ir/printer.mli: Func Program
