lib/ir/builder.ml: Block Func Instr Label List Printf Var
