lib/ir/deps.ml: Array Instr List Var
