(** Parser for the textual IR produced by {!Printer}.

    Grammar (comments run from [#] to end of line):
    {v
      program  ::= func...
      func     ::= "func" "@" id "(" vars ")" "{" block... "}"
      vars     ::= empty | var | var "," vars
      block    ::= id ":" instr... term
      instr    ::= var "=" "const" int
                 | var "=" unop var
                 | var "=" binop var "," var
                 | var "=" "load" var "," int
                 | "store" var "," var "," int
                 | [var "="] "call" "@" id "(" vars ")"
                 | "nop"
      term     ::= "jmp" id | "br" var "," id "," id | "ret" [var]
      var      ::= "%" id
    v} *)

exception Error of string
(** Raised with a message mentioning the offending line. *)

val parse_program : string -> Program.t
val parse_func : string -> Func.t
(** Parses a source containing exactly one function. *)
