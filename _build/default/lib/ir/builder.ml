type t = {
  name : string;
  params : Var.t list;
  mutable counter : int;
  mutable blocks_rev : Block.t list;
  mutable current : (Label.t * Instr.t list) option;  (* instrs reversed *)
}

let create ~name ~params =
  {
    name;
    params = List.map Var.of_string params;
    counter = 0;
    blocks_rev = [];
    current = Some (Label.of_string "entry", []);
  }

let param b i =
  match List.nth_opt b.params i with
  | Some v -> v
  | None -> invalid_arg "Builder.param: index out of range"

let fresh_var b prefix =
  let v = Printf.sprintf "%s%d" prefix b.counter in
  b.counter <- b.counter + 1;
  Var.of_string v

let fresh_label b prefix =
  let l = Printf.sprintf "%s%d" prefix b.counter in
  b.counter <- b.counter + 1;
  Label.of_string l

let start_block b l =
  (match b.current with
   | Some (open_label, _) ->
     invalid_arg
       (Printf.sprintf "Builder.start_block: block %s still open"
          (Label.to_string open_label))
   | None -> ());
  let already =
    List.exists
      (fun (blk : Block.t) -> Label.equal blk.Block.label l)
      b.blocks_rev
  in
  if already then
    invalid_arg
      (Printf.sprintf "Builder.start_block: duplicate label %s"
         (Label.to_string l));
  b.current <- Some (l, [])

let emit b i =
  match b.current with
  | None -> invalid_arg "Builder.emit: no open block"
  | Some (l, instrs) -> b.current <- Some (l, i :: instrs)

let const b k =
  let d = fresh_var b "t" in
  emit b (Instr.Const (d, k));
  d

let binop b op s1 s2 =
  let d = fresh_var b "t" in
  emit b (Instr.Binop (op, d, s1, s2));
  d

let unop b op s =
  let d = fresh_var b "t" in
  emit b (Instr.Unop (op, d, s));
  d

let mov b s = unop b Instr.Mov s

let load b ~base off =
  let d = fresh_var b "t" in
  emit b (Instr.Load (d, base, off));
  d

let store b ~value ~base off = emit b (Instr.Store (value, base, off))

let call b name args =
  let d = fresh_var b "t" in
  emit b (Instr.Call (Some d, name, args));
  d

let call_void b name args = emit b (Instr.Call (None, name, args))
let nop b = emit b Instr.Nop

let close b term =
  match b.current with
  | None -> invalid_arg "Builder: no open block to terminate"
  | Some (l, instrs_rev) ->
    let blk = Block.make l (List.rev instrs_rev) term in
    b.blocks_rev <- blk :: b.blocks_rev;
    b.current <- None

let jump b l = close b (Block.Jump l)
let branch b c t f = close b (Block.Branch (c, t, f))
let ret b v = close b (Block.Return v)

let finish b =
  (match b.current with
   | Some (l, _) ->
     invalid_arg
       (Printf.sprintf "Builder.finish: block %s not terminated"
          (Label.to_string l))
   | None -> ());
  Func.make ~name:b.name ~params:b.params (List.rev b.blocks_rev)
