(** Virtual registers (program variables).

    Variables are identified by name; the {!Builder} guarantees freshness
    within a function. Physical registers only appear after register
    allocation, as an {!Tdfa_regalloc.Assignment} from variables to
    register-file cell indices. *)

type t

val of_string : string -> t
(** [of_string s] is the variable named [s]. [s] must be non-empty. *)

val to_string : t -> string

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val pp : Format.formatter -> t -> unit
(** Prints as [%name]. *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
module Tbl : Hashtbl.S with type key = t
