(** Procedures: a name, parameters and an ordered list of basic blocks.
    The first block is the entry. All CFG queries live here. *)

type t = private { name : string; params : Var.t list; blocks : Block.t list }

val make : name:string -> params:Var.t list -> Block.t list -> t
(** Raises [Invalid_argument] when the block list is empty or labels are
    duplicated. *)

val entry : t -> Block.t
val entry_label : t -> Label.t

val find_block : t -> Label.t -> Block.t
(** @raise Not_found when no block carries the label. *)

val mem_block : t -> Label.t -> bool
val labels : t -> Label.t list

val successors : t -> Label.t -> Label.t list
val predecessors : t -> Label.t -> Label.t list
(** Computed from a cached predecessor map; order follows block order. *)

val postorder : t -> Label.t list
(** Depth-first postorder over blocks reachable from the entry. *)

val reverse_postorder : t -> Label.t list

val reachable : t -> Label.Set.t

val instr_count : t -> int
(** Number of body instructions (terminators excluded). *)

val iter_instrs : (Label.t -> int -> Instr.t -> unit) -> t -> unit
val fold_instrs : ('a -> Label.t -> int -> Instr.t -> 'a) -> 'a -> t -> 'a

val map_blocks : (Block.t -> Block.t) -> t -> t
val replace_block : t -> Block.t -> t
(** Replace the block with the same label. *)

val defined_vars : t -> Var.Set.t
(** Parameters plus every variable defined by an instruction. *)

val all_vars : t -> Var.Set.t
(** Every variable mentioned anywhere in the function. *)

val pp : Format.formatter -> t -> unit
