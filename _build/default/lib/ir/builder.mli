(** Imperative construction of functions with fresh names.

    Typical use:
    {[
      let b = Builder.create ~name:"f" ~params:[ "n" ] in
      let n = Builder.param b 0 in
      let zero = Builder.const b 0 in
      ...
      Builder.ret b (Some zero);
      let func = Builder.finish b
    ]} *)

type t

val create : name:string -> params:string list -> t
(** Opens an implicit entry block labelled ["entry"]. *)

val param : t -> int -> Var.t
(** @raise Invalid_argument when the index is out of range. *)

val fresh_var : t -> string -> Var.t
(** [fresh_var b prefix] is a variable named [prefix<k>] unused so far. *)

val fresh_label : t -> string -> Label.t

val start_block : t -> Label.t -> unit
(** Begin a new block. The previous block must have been terminated.
    @raise Invalid_argument otherwise, or when the label was already
    used. *)

val emit : t -> Instr.t -> unit

(** {2 Emission helpers — each returns the defined variable} *)

val const : t -> int -> Var.t
val binop : t -> Instr.binop -> Var.t -> Var.t -> Var.t
val unop : t -> Instr.unop -> Var.t -> Var.t
val mov : t -> Var.t -> Var.t
val load : t -> base:Var.t -> int -> Var.t
val store : t -> value:Var.t -> base:Var.t -> int -> unit
val call : t -> string -> Var.t list -> Var.t
val call_void : t -> string -> Var.t list -> unit
val nop : t -> unit

(** {2 Terminators — each closes the current block} *)

val jump : t -> Label.t -> unit
val branch : t -> Var.t -> Label.t -> Label.t -> unit
val ret : t -> Var.t option -> unit

val finish : t -> Func.t
(** @raise Invalid_argument when a block is still open. *)
