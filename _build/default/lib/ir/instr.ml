type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Slt
  | Sle
  | Seq
  | Sne

type unop = Neg | Not | Mov

type t =
  | Const of Var.t * int
  | Unop of unop * Var.t * Var.t
  | Binop of binop * Var.t * Var.t * Var.t
  | Load of Var.t * Var.t * int
  | Store of Var.t * Var.t * int
  | Call of Var.t option * string * Var.t list
  | Nop

let def = function
  | Const (d, _) | Unop (_, d, _) | Binop (_, d, _, _) | Load (d, _, _) -> Some d
  | Call (d, _, _) -> d
  | Store (_, _, _) | Nop -> None

let uses = function
  | Const (_, _) | Nop -> []
  | Unop (_, _, s) -> [ s ]
  | Binop (_, _, s1, s2) -> [ s1; s2 ]
  | Load (_, base, _) -> [ base ]
  | Store (v, base, _) -> [ v; base ]
  | Call (_, _, args) -> args

let accessed i =
  match def i with None -> uses i | Some d -> uses i @ [ d ]

let map_uses f = function
  | Const (d, k) -> Const (d, k)
  | Unop (op, d, s) -> Unop (op, d, f s)
  | Binop (op, d, s1, s2) -> Binop (op, d, f s1, f s2)
  | Load (d, base, off) -> Load (d, f base, off)
  | Store (v, base, off) -> Store (f v, f base, off)
  | Call (d, name, args) -> Call (d, name, List.map f args)
  | Nop -> Nop

let map_def f = function
  | Const (d, k) -> Const (f d, k)
  | Unop (op, d, s) -> Unop (op, f d, s)
  | Binop (op, d, s1, s2) -> Binop (op, f d, s1, s2)
  | Load (d, base, off) -> Load (f d, base, off)
  | Store (v, base, off) -> Store (v, base, off)
  | Call (d, name, args) -> Call (Option.map f d, name, args)
  | Nop -> Nop

let map_vars f i = map_def f (map_uses f i)

let accesses_memory = function
  | Load (_, _, _) | Store (_, _, _) -> true
  | Const _ | Unop _ | Binop _ | Call _ | Nop -> false

let is_pure = function
  | Const _ | Unop _ | Binop _ -> true
  | Load _ | Store _ | Call _ | Nop -> false

let eval_binop op a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div -> if b = 0 then 0 else a / b
  | Rem -> if b = 0 then 0 else a mod b
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  | Shl -> a lsl (b land 63)
  | Shr -> a lsr (b land 63)
  | Slt -> if a < b then 1 else 0
  | Sle -> if a <= b then 1 else 0
  | Seq -> if a = b then 1 else 0
  | Sne -> if a <> b then 1 else 0

let eval_unop op a =
  match op with Neg -> -a | Not -> lnot a | Mov -> a

let binop_table =
  [
    (Add, "add");
    (Sub, "sub");
    (Mul, "mul");
    (Div, "div");
    (Rem, "rem");
    (And, "and");
    (Or, "or");
    (Xor, "xor");
    (Shl, "shl");
    (Shr, "shr");
    (Slt, "slt");
    (Sle, "sle");
    (Seq, "seq");
    (Sne, "sne");
  ]

let string_of_binop op = List.assoc op binop_table

let binop_of_string s =
  List.find_map (fun (op, name) -> if String.equal name s then Some op else None) binop_table

let unop_table = [ (Neg, "neg"); (Not, "not"); (Mov, "mov") ]
let string_of_unop op = List.assoc op unop_table

let unop_of_string s =
  List.find_map (fun (op, name) -> if String.equal name s then Some op else None) unop_table

let equal (a : t) (b : t) = a = b

let pp ppf i =
  match i with
  | Const (d, k) -> Format.fprintf ppf "%a = const %d" Var.pp d k
  | Unop (op, d, s) ->
    Format.fprintf ppf "%a = %s %a" Var.pp d (string_of_unop op) Var.pp s
  | Binop (op, d, s1, s2) ->
    Format.fprintf ppf "%a = %s %a, %a" Var.pp d (string_of_binop op) Var.pp s1 Var.pp s2
  | Load (d, base, off) -> Format.fprintf ppf "%a = load %a, %d" Var.pp d Var.pp base off
  | Store (v, base, off) -> Format.fprintf ppf "store %a, %a, %d" Var.pp v Var.pp base off
  | Call (d, name, args) ->
    let pp_args ppf args =
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
        Var.pp ppf args
    in
    (match d with
     | Some d -> Format.fprintf ppf "%a = call @%s(%a)" Var.pp d name pp_args args
     | None -> Format.fprintf ppf "call @%s(%a)" name pp_args args)
  | Nop -> Format.fprintf ppf "nop"

let to_string i = Format.asprintf "%a" pp i
