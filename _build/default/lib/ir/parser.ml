exception Error of string

type token =
  | Tid of string
  | Tvar of string
  | Tat of string
  | Tint of int
  | Tlparen
  | Trparen
  | Tlbrace
  | Trbrace
  | Tcomma
  | Teq
  | Tcolon

let string_of_token = function
  | Tid s -> s
  | Tvar s -> "%" ^ s
  | Tat s -> "@" ^ s
  | Tint k -> string_of_int k
  | Tlparen -> "("
  | Trparen -> ")"
  | Tlbrace -> "{"
  | Trbrace -> "}"
  | Tcomma -> ","
  | Teq -> "="
  | Tcolon -> ":"

let is_id_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '.'

(* Tokens are paired with their source line for error messages. *)
let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let line = ref 1 in
  let push t = tokens := (t, !line) :: !tokens in
  let rec scan i =
    if i >= n then ()
    else
      let c = src.[i] in
      if c = '\n' then begin
        incr line;
        scan (i + 1)
      end
      else if c = ' ' || c = '\t' || c = '\r' then scan (i + 1)
      else if c = '#' then begin
        let rec skip j = if j < n && src.[j] <> '\n' then skip (j + 1) else j in
        scan (skip i)
      end
      else if c = '(' then (push Tlparen; scan (i + 1))
      else if c = ')' then (push Trparen; scan (i + 1))
      else if c = '{' then (push Tlbrace; scan (i + 1))
      else if c = '}' then (push Trbrace; scan (i + 1))
      else if c = ',' then (push Tcomma; scan (i + 1))
      else if c = '=' then (push Teq; scan (i + 1))
      else if c = ':' then (push Tcolon; scan (i + 1))
      else if c = '%' || c = '@' then begin
        let rec stop j = if j < n && is_id_char src.[j] then stop (j + 1) else j in
        let j = stop (i + 1) in
        if j = i + 1 then
          raise (Error (Printf.sprintf "line %d: empty name after '%c'" !line c));
        let name = String.sub src (i + 1) (j - i - 1) in
        push (if c = '%' then Tvar name else Tat name);
        scan j
      end
      else if c = '-' || (c >= '0' && c <= '9') then begin
        let rec stop j =
          if j < n && src.[j] >= '0' && src.[j] <= '9' then stop (j + 1) else j
        in
        let j = stop (i + 1) in
        let s = String.sub src i (j - i) in
        (match int_of_string_opt s with
         | Some k -> push (Tint k)
         | None -> raise (Error (Printf.sprintf "line %d: bad integer %s" !line s)));
        scan j
      end
      else if is_id_char c then begin
        let rec stop j = if j < n && is_id_char src.[j] then stop (j + 1) else j in
        let j = stop i in
        push (Tid (String.sub src i (j - i)));
        scan j
      end
      else raise (Error (Printf.sprintf "line %d: unexpected character '%c'" !line c))
  in
  scan 0;
  List.rev !tokens

(* Recursive-descent over the token list. *)
type state = { mutable toks : (token * int) list }

let fail_at line msg = raise (Error (Printf.sprintf "line %d: %s" line msg))

let peek st = match st.toks with [] -> None | (t, l) :: _ -> Some (t, l)

let next st =
  match st.toks with
  | [] -> raise (Error "unexpected end of input")
  | (t, l) :: rest ->
    st.toks <- rest;
    (t, l)

let expect st want =
  let t, l = next st in
  if t <> want then
    fail_at l
      (Printf.sprintf "expected '%s' but found '%s'" (string_of_token want)
         (string_of_token t))

let expect_id st =
  match next st with
  | Tid s, _ -> s
  | t, l -> fail_at l (Printf.sprintf "expected identifier, found '%s'" (string_of_token t))

let expect_var st =
  match next st with
  | Tvar s, _ -> Var.of_string s
  | t, l -> fail_at l (Printf.sprintf "expected %%var, found '%s'" (string_of_token t))

let expect_int st =
  match next st with
  | Tint k, _ -> k
  | t, l -> fail_at l (Printf.sprintf "expected integer, found '%s'" (string_of_token t))

let expect_at st =
  match next st with
  | Tat s, _ -> s
  | t, l -> fail_at l (Printf.sprintf "expected @name, found '%s'" (string_of_token t))

let parse_args st =
  expect st Tlparen;
  let rec loop acc =
    match peek st with
    | Some (Trparen, _) ->
      ignore (next st);
      List.rev acc
    | _ ->
      let v = expect_var st in
      (match peek st with
       | Some (Tcomma, _) ->
         ignore (next st);
         loop (v :: acc)
       | _ ->
         expect st Trparen;
         List.rev (v :: acc))
  in
  loop []

let parse_call st dst =
  let callee = expect_at st in
  let args = parse_args st in
  Instr.Call (dst, callee, args)

(* An instruction or terminator beginning with a keyword identifier. *)
let parse_keyword_line st kw line =
  match kw with
  | "store" ->
    let v = expect_var st in
    expect st Tcomma;
    let base = expect_var st in
    expect st Tcomma;
    let off = expect_int st in
    `Instr (Instr.Store (v, base, off))
  | "call" -> `Instr (parse_call st None)
  | "nop" -> `Instr Instr.Nop
  | "jmp" -> `Term (Block.Jump (Label.of_string (expect_id st)))
  | "br" ->
    let c = expect_var st in
    expect st Tcomma;
    let t = Label.of_string (expect_id st) in
    expect st Tcomma;
    let f = Label.of_string (expect_id st) in
    `Term (Block.Branch (c, t, f))
  | "ret" ->
    (match peek st with
     | Some (Tvar _, _) -> `Term (Block.Return (Some (expect_var st)))
     | _ -> `Term (Block.Return None))
  | other -> fail_at line (Printf.sprintf "unknown instruction '%s'" other)

(* After "%d =": const/load/call/unop/binop. *)
let parse_assign st dst line =
  let op = expect_id st in
  if String.equal op "const" then Instr.Const (dst, expect_int st)
  else if String.equal op "load" then begin
    let base = expect_var st in
    expect st Tcomma;
    let off = expect_int st in
    Instr.Load (dst, base, off)
  end
  else if String.equal op "call" then parse_call st (Some dst)
  else
    match Instr.unop_of_string op with
    | Some u -> Instr.Unop (u, dst, expect_var st)
    | None ->
      (match Instr.binop_of_string op with
       | Some b ->
         let s1 = expect_var st in
         expect st Tcomma;
         let s2 = expect_var st in
         Instr.Binop (b, dst, s1, s2)
       | None -> fail_at line (Printf.sprintf "unknown operation '%s'" op))

let parse_block st first_label =
  let rec body acc =
    match next st with
    | Tvar d, _ ->
      expect st Teq;
      let line = match peek st with Some (_, l) -> l | None -> 0 in
      body (parse_assign st (Var.of_string d) line :: acc)
    | Tid kw, line ->
      (match parse_keyword_line st kw line with
       | `Instr i -> body (i :: acc)
       | `Term t -> (List.rev acc, t))
    | t, l ->
      fail_at l
        (Printf.sprintf "expected instruction, found '%s'" (string_of_token t))
  in
  let instrs, term = body [] in
  Block.make first_label instrs term

let parse_blocks st =
  let rec loop acc =
    match peek st with
    | Some (Trbrace, _) ->
      ignore (next st);
      List.rev acc
    | Some (Tid name, _) ->
      ignore (next st);
      expect st Tcolon;
      loop (parse_block st (Label.of_string name) :: acc)
    | Some (t, l) ->
      fail_at l
        (Printf.sprintf "expected block label or '}', found '%s'" (string_of_token t))
    | None -> raise (Error "unexpected end of input inside function")
  in
  loop []

let parse_one_func st =
  (match next st with
   | Tid "func", _ -> ()
   | t, l -> fail_at l (Printf.sprintf "expected 'func', found '%s'" (string_of_token t)));
  let name = expect_at st in
  let params = parse_args st in
  expect st Tlbrace;
  let blocks = parse_blocks st in
  Func.make ~name ~params blocks

let parse_program src =
  let st = { toks = tokenize src } in
  let rec loop acc =
    match peek st with
    | None -> List.rev acc
    | Some _ -> loop (parse_one_func st :: acc)
  in
  let funcs = loop [] in
  if funcs = [] then raise (Error "no functions in input");
  Program.of_funcs funcs

let parse_func src =
  let p = parse_program src in
  match Program.funcs p with
  | [ f ] -> f
  | fs -> raise (Error (Printf.sprintf "expected one function, found %d" (List.length fs)))
