let block_preds body =
  let n = Array.length body in
  let preds = Array.make n [] in
  let add_edge i j = if i <> j then preds.(j) <- i :: preds.(j) in
  let is_mem i = Instr.accesses_memory body.(i) in
  let is_store i =
    match body.(i) with
    | Instr.Store _ -> true
    | Instr.Const _ | Instr.Unop _ | Instr.Binop _ | Instr.Load _
    | Instr.Call _ | Instr.Nop ->
      false
  in
  let is_barrier i =
    match body.(i) with
    | Instr.Call _ -> true
    | Instr.Const _ | Instr.Unop _ | Instr.Binop _ | Instr.Load _
    | Instr.Store _ | Instr.Nop ->
      false
  in
  for j = 0 to n - 1 do
    for i = 0 to j - 1 do
      let def_i = Instr.def body.(i) in
      let def_j = Instr.def body.(j) in
      let uses_i = Instr.uses body.(i) in
      let uses_j = Instr.uses body.(j) in
      let raw =
        match def_i with
        | Some d -> List.exists (Var.equal d) uses_j
        | None -> false
      in
      let war =
        match def_j with
        | Some d -> List.exists (Var.equal d) uses_i
        | None -> false
      in
      let waw =
        match (def_i, def_j) with
        | Some a, Some b -> Var.equal a b
        | Some _, None | None, Some _ | None, None -> false
      in
      let mem = (is_store i && is_mem j) || (is_mem i && is_store j) in
      let barrier = is_barrier i || is_barrier j in
      if raw || war || waw || mem || barrier then add_edge i j
    done
  done;
  preds

let is_topological body order =
  let n = Array.length body in
  if List.length order <> n then false
  else begin
    let position = Array.make n (-1) in
    List.iteri (fun pos idx -> if idx >= 0 && idx < n then position.(idx) <- pos) order;
    if Array.exists (fun p -> p < 0) position then false
    else begin
      let preds = block_preds body in
      let ok = ref true in
      Array.iteri
        (fun j ps ->
          List.iter (fun i -> if position.(i) > position.(j) then ok := false) ps)
        preds;
      !ok
    end
  end
