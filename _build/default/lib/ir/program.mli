(** Whole programs: a set of functions, looked up by name at call sites. *)

type t

val of_funcs : Func.t list -> t
(** Raises [Invalid_argument] on duplicate function names or an empty
    list. *)

val funcs : t -> Func.t list
val find : t -> string -> Func.t option
val main : t -> Func.t
(** The function named ["main"] when present, otherwise the first one. *)

val pp : Format.formatter -> t -> unit
