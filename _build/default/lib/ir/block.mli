(** Basic blocks: a label, a straight-line body and a terminator. *)

type terminator =
  | Jump of Label.t
  | Branch of Var.t * Label.t * Label.t
      (** [Branch (c, t, f)]: go to [t] when [c <> 0], else to [f] *)
  | Return of Var.t option

type t = { label : Label.t; body : Instr.t array; term : terminator }

val make : Label.t -> Instr.t list -> terminator -> t
val successors : terminator -> Label.t list
val term_uses : terminator -> Var.t list
val num_instrs : t -> int

val map_body : (Instr.t -> Instr.t) -> t -> t
val with_body : t -> Instr.t list -> t
(** Replace the body, keeping label and terminator. *)

val map_term_labels : (Label.t -> Label.t) -> terminator -> terminator

val pp : Format.formatter -> t -> unit
