(** Three-address instructions of the RISC-like IR.

    Every instruction defines at most one variable and uses a small set of
    variables; this is exactly the information the data-flow framework and
    the thermal analysis need. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Slt  (** set if less-than (signed) *)
  | Sle  (** set if less-or-equal *)
  | Seq  (** set if equal *)
  | Sne  (** set if not-equal *)

type unop =
  | Neg
  | Not
  | Mov  (** register-to-register copy *)

type t =
  | Const of Var.t * int  (** [Const (d, k)] : [d <- k] *)
  | Unop of unop * Var.t * Var.t  (** [Unop (op, d, s)] : [d <- op s] *)
  | Binop of binop * Var.t * Var.t * Var.t
      (** [Binop (op, d, s1, s2)] : [d <- s1 op s2] *)
  | Load of Var.t * Var.t * int
      (** [Load (d, base, off)] : [d <- mem\[base + off\]] *)
  | Store of Var.t * Var.t * int
      (** [Store (v, base, off)] : [mem\[base + off\] <- v] *)
  | Call of Var.t option * string * Var.t list
      (** direct call; the result, if any, is bound to the first variable *)
  | Nop  (** no operation — used by the cooling pass *)

val def : t -> Var.t option
(** The variable defined (written) by the instruction, if any. *)

val uses : t -> Var.t list
(** The variables read by the instruction, in operand order (duplicates
    preserved — a register read twice is accessed twice). *)

val accessed : t -> Var.t list
(** All register-file accesses, reads then write; this drives the thermal
    model. *)

val map_uses : (Var.t -> Var.t) -> t -> t
(** Rename the used (read) variables, leaving the definition in place. *)

val map_def : (Var.t -> Var.t) -> t -> t
(** Rename the defined variable, leaving the uses in place. *)

val map_vars : (Var.t -> Var.t) -> t -> t

val accesses_memory : t -> bool
val is_pure : t -> bool
(** [is_pure i] holds when [i] has no side effect besides its definition;
    such instructions may be reordered by the scheduler subject to
    data dependences. *)

val eval_binop : binop -> int -> int -> int
(** Integer semantics used by the interpreter. Division and remainder by
    zero evaluate to 0 (the interpreter is total). *)

val eval_unop : unop -> int -> int

val string_of_binop : binop -> string
val binop_of_string : string -> binop option
val string_of_unop : unop -> string
val unop_of_string : string -> unop option

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
