type t = { name : string; params : Var.t list; blocks : Block.t list }

let make ~name ~params blocks =
  if blocks = [] then invalid_arg "Func.make: no blocks";
  let seen = Label.Tbl.create 16 in
  List.iter
    (fun (b : Block.t) ->
      if Label.Tbl.mem seen b.Block.label then
        invalid_arg
          (Printf.sprintf "Func.make: duplicate label %s"
             (Label.to_string b.Block.label));
      Label.Tbl.add seen b.Block.label ())
    blocks;
  { name; params; blocks }

let entry f =
  match f.blocks with b :: _ -> b | [] -> assert false

let entry_label f = (entry f).Block.label

let find_block f l =
  let has (b : Block.t) = Label.equal b.Block.label l in
  match List.find_opt has f.blocks with
  | Some b -> b
  | None -> raise Not_found

let mem_block f l = List.exists (fun (b : Block.t) -> Label.equal b.Block.label l) f.blocks
let labels f = List.map (fun (b : Block.t) -> b.Block.label) f.blocks
let successors f l = Block.successors (find_block f l).Block.term

let predecessors f l =
  let preds =
    List.concat_map
      (fun (b : Block.t) ->
        List.filter_map
          (fun succ ->
            if Label.equal succ l then Some b.Block.label else None)
          (Block.successors b.Block.term))
      f.blocks
  in
  preds

let postorder f =
  let visited = Label.Tbl.create 16 in
  let order = ref [] in
  let rec visit l =
    (* Dangling branch targets are reported by Validate; traversal just
       ignores them. *)
    if mem_block f l && not (Label.Tbl.mem visited l) then begin
      Label.Tbl.add visited l ();
      List.iter visit (successors f l);
      order := l :: !order
    end
  in
  visit (entry_label f);
  List.rev !order

let reverse_postorder f = List.rev (postorder f)

let reachable f =
  List.fold_left (fun acc l -> Label.Set.add l acc) Label.Set.empty (postorder f)

let instr_count f =
  List.fold_left (fun acc b -> acc + Block.num_instrs b) 0 f.blocks

let iter_instrs k f =
  List.iter
    (fun (b : Block.t) ->
      Array.iteri (fun i instr -> k b.Block.label i instr) b.Block.body)
    f.blocks

let fold_instrs k init f =
  List.fold_left
    (fun acc (b : Block.t) ->
      let acc = ref acc in
      Array.iteri (fun i instr -> acc := k !acc b.Block.label i instr) b.Block.body;
      !acc)
    init f.blocks

let map_blocks g f = { f with blocks = List.map g f.blocks }

let replace_block f (b : Block.t) =
  let swap (b' : Block.t) =
    if Label.equal b'.Block.label b.Block.label then b else b'
  in
  { f with blocks = List.map swap f.blocks }

let defined_vars f =
  let from_params =
    List.fold_left (fun acc v -> Var.Set.add v acc) Var.Set.empty f.params
  in
  fold_instrs
    (fun acc _ _ i ->
      match Instr.def i with Some d -> Var.Set.add d acc | None -> acc)
    from_params f

let all_vars f =
  let defs = defined_vars f in
  let with_uses =
    fold_instrs
      (fun acc _ _ i ->
        List.fold_left (fun acc v -> Var.Set.add v acc) acc (Instr.uses i))
      defs f
  in
  List.fold_left
    (fun acc (b : Block.t) ->
      List.fold_left
        (fun acc v -> Var.Set.add v acc)
        acc
        (Block.term_uses b.Block.term))
    with_uses f.blocks

let pp ppf f =
  let pp_params ppf params =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
      Var.pp ppf params
  in
  Format.fprintf ppf "func @%s(%a) {@\n" f.name pp_params f.params;
  List.iter (fun b -> Format.fprintf ppf "%a@\n" Block.pp b) f.blocks;
  Format.fprintf ppf "}"
