let errors (f : Func.t) =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  let defined = Func.defined_vars f in
  (* Branch targets must exist. *)
  List.iter
    (fun (b : Block.t) ->
      List.iter
        (fun l ->
          if not (Func.mem_block f l) then
            err "block %s: branch target %s does not exist"
              (Label.to_string b.Block.label) (Label.to_string l))
        (Block.successors b.Block.term))
    f.Func.blocks;
  (* Every used variable must be defined somewhere or be a parameter. *)
  let check_use where v =
    if not (Var.Set.mem v defined) then
      err "%s: variable %s is never defined" where (Var.to_string v)
  in
  Func.iter_instrs
    (fun l i instr ->
      let where = Printf.sprintf "block %s, instr %d" (Label.to_string l) i in
      List.iter (check_use where) (Instr.uses instr))
    f;
  List.iter
    (fun (b : Block.t) ->
      let where = Printf.sprintf "block %s, terminator" (Label.to_string b.Block.label) in
      List.iter (check_use where) (Block.term_uses b.Block.term))
    f.Func.blocks;
  (* Unreachable blocks are suspicious (dead code from a pass bug). *)
  let reach = Func.reachable f in
  List.iter
    (fun (b : Block.t) ->
      if not (Label.Set.mem b.Block.label reach) then
        err "block %s is unreachable from entry" (Label.to_string b.Block.label))
    f.Func.blocks;
  List.rev !errs

let check f =
  match errors f with
  | [] -> Ok ()
  | es -> Error (String.concat "\n" es)
