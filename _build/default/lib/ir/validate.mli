(** Structural well-formedness checks, used by tests and the CLI before
    running any analysis. *)

val errors : Func.t -> string list
(** All violations found: branch targets that do not exist, variables used
    without any reaching definition site (conservatively: not a parameter
    and never defined anywhere), unreachable blocks. An empty list means
    the function is well-formed. *)

val check : Func.t -> (unit, string) result
(** [Ok ()] when {!errors} is empty, otherwise [Error] with the messages
    joined by newlines. *)
