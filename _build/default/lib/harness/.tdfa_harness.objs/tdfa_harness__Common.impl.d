lib/harness/common.ml: Alloc Analysis Assignment Driver Interp Layout Metrics Params Policy Rc_model Setup Tdfa_core Tdfa_exec Tdfa_floorplan Tdfa_regalloc Tdfa_thermal Thermal_state
