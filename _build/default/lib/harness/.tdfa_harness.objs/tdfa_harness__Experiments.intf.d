lib/harness/experiments.mli:
