lib/harness/common.mli: Alloc Analysis Func Layout Metrics Policy Rc_model Tdfa_core Tdfa_floorplan Tdfa_ir Tdfa_regalloc Tdfa_thermal Var
