open Tdfa_ir
module B = Builder

(* Counted loop scaffold recognised by the trip-count estimator:
   i = 0; while (i < count) { body; i += 1 }. Returns the induction
   variable; leaves the exit block open. *)
let counted_loop b ~count body =
  let i = B.const b 0 in
  let bound = B.const b count in
  let one = B.const b 1 in
  let header = B.fresh_label b "hdr" in
  let lbody = B.fresh_label b "body" in
  let lexit = B.fresh_label b "exit" in
  B.jump b header;
  B.start_block b header;
  let c = B.binop b Instr.Slt i bound in
  B.branch b c lbody lexit;
  B.start_block b lbody;
  body i;
  B.emit b (Instr.Binop (Instr.Add, i, i, one));
  B.jump b header;
  B.start_block b lexit;
  i

(* Accumulate into a fixed variable: acc <- acc op x. *)
let accumulate b op acc x = B.emit b (Instr.Binop (op, acc, acc, x))

let matmul ?(n = 8) () =
  let b = B.create ~name:"matmul" ~params:[] in
  let base_a = B.const b 0 in
  let base_b = B.const b 1000 in
  let base_c = B.const b 2000 in
  let nv = B.const b n in
  let (_ : Var.t) =
    counted_loop b ~count:n (fun i ->
        let (_ : Var.t) =
          counted_loop b ~count:n (fun j ->
              let acc = B.const b 0 in
              let (_ : Var.t) =
                counted_loop b ~count:n (fun k ->
                    let row_a = B.binop b Instr.Mul i nv in
                    let idx_a = B.binop b Instr.Add row_a k in
                    let addr_a = B.binop b Instr.Add base_a idx_a in
                    let va = B.load b ~base:addr_a 0 in
                    let row_b = B.binop b Instr.Mul k nv in
                    let idx_b = B.binop b Instr.Add row_b j in
                    let addr_b = B.binop b Instr.Add base_b idx_b in
                    let vb = B.load b ~base:addr_b 0 in
                    let prod = B.binop b Instr.Mul va vb in
                    accumulate b Instr.Add acc prod)
              in
              let row_c = B.binop b Instr.Mul i nv in
              let idx_c = B.binop b Instr.Add row_c j in
              let addr_c = B.binop b Instr.Add base_c idx_c in
              B.store b ~value:acc ~base:addr_c 0)
        in
        ())
  in
  B.ret b None;
  B.finish b

let fir ?(n = 64) ?(taps = 8) () =
  let b = B.create ~name:"fir" ~params:[] in
  let base_x = B.const b 0 in
  let base_y = B.const b 4000 in
  let base_coef = B.const b 3000 in
  let coefs = List.init taps (fun t -> B.load b ~base:base_coef t) in
  let (_ : Var.t) =
    counted_loop b ~count:n (fun i ->
        let addr_x = B.binop b Instr.Add base_x i in
        let acc = B.const b 0 in
        List.iteri
          (fun t coef ->
            let x = B.load b ~base:addr_x t in
            let prod = B.binop b Instr.Mul x coef in
            accumulate b Instr.Add acc prod)
          coefs;
        let addr_y = B.binop b Instr.Add base_y i in
        B.store b ~value:acc ~base:addr_y 0)
  in
  B.ret b None;
  B.finish b

let idct_row ?(rows = 8) () =
  let b = B.create ~name:"idct_row" ~params:[] in
  let base = B.const b 0 in
  let eight = B.const b 8 in
  let c1 = B.const b 1004 in
  let c2 = B.const b 946 in
  let c3 = B.const b 851 in
  let shift = B.const b 10 in
  let (_ : Var.t) =
    counted_loop b ~count:rows (fun r ->
        let off = B.binop b Instr.Mul r eight in
        let row = B.binop b Instr.Add base off in
        let v = Array.init 8 (fun k -> B.load b ~base:row k) in
        let s0 = B.binop b Instr.Add v.(0) v.(7) in
        let s1 = B.binop b Instr.Add v.(1) v.(6) in
        let s2 = B.binop b Instr.Add v.(2) v.(5) in
        let s3 = B.binop b Instr.Add v.(3) v.(4) in
        let d0 = B.binop b Instr.Sub v.(0) v.(7) in
        let d1 = B.binop b Instr.Sub v.(1) v.(6) in
        let d2 = B.binop b Instr.Sub v.(2) v.(5) in
        let d3 = B.binop b Instr.Sub v.(3) v.(4) in
        let scale x c =
          let m = B.binop b Instr.Mul x c in
          B.binop b Instr.Shr m shift
        in
        let e0 = B.binop b Instr.Add s0 s3 in
        let e1 = B.binop b Instr.Add s1 s2 in
        let e2 = B.binop b Instr.Sub s0 s3 in
        let e3 = B.binop b Instr.Sub s1 s2 in
        let o0 = scale d0 c1 in
        let o1 = scale d1 c2 in
        let o2 = scale d2 c3 in
        let o3 = scale d3 c1 in
        let out =
          [|
            B.binop b Instr.Add e0 e1;
            B.binop b Instr.Add e2 (scale e3 c2);
            B.binop b Instr.Add o0 o1;
            B.binop b Instr.Sub o2 o3;
            B.binop b Instr.Sub e0 e1;
            B.binop b Instr.Sub e2 (scale e3 c3);
            B.binop b Instr.Sub o0 o3;
            B.binop b Instr.Add o1 o2;
          |]
        in
        Array.iteri (fun k x -> B.store b ~value:x ~base:row k) out)
  in
  B.ret b None;
  B.finish b

let crc ?(bytes = 32) () =
  let b = B.create ~name:"crc" ~params:[] in
  let base = B.const b 0 in
  let crc = B.const b 0xFFFF in
  let one = B.const b 1 in
  let poly = B.const b 0xA001 in
  let (_ : Var.t) =
    counted_loop b ~count:bytes (fun i ->
        let addr = B.binop b Instr.Add base i in
        let byte = B.load b ~base:addr 0 in
        accumulate b Instr.Xor crc byte;
        let (_ : Var.t) =
          counted_loop b ~count:8 (fun _ ->
              let lsb = B.binop b Instr.And crc one in
              let shifted = B.binop b Instr.Shr crc one in
              let masked = B.binop b Instr.Mul poly lsb in
              let next = B.binop b Instr.Xor shifted masked in
              B.emit b (Instr.Unop (Instr.Mov, crc, next)))
        in
        ())
  in
  let out = B.const b 5000 in
  B.store b ~value:crc ~base:out 0;
  B.ret b (Some crc);
  B.finish b

let stencil ?(n = 8) () =
  let b = B.create ~name:"stencil" ~params:[] in
  let base_in = B.const b 0 in
  let base_out = B.const b 2000 in
  let nv = B.const b n in
  let one = B.const b 1 in
  let five = B.const b 5 in
  let inner = max 1 (n - 2) in
  let (_ : Var.t) =
    counted_loop b ~count:inner (fun i0 ->
        let (_ : Var.t) =
          counted_loop b ~count:inner (fun j0 ->
              let i = B.binop b Instr.Add i0 one in
              let j = B.binop b Instr.Add j0 one in
              let row = B.binop b Instr.Mul i nv in
              let idx = B.binop b Instr.Add row j in
              let addr = B.binop b Instr.Add base_in idx in
              let center = B.load b ~base:addr 0 in
              let up = B.load b ~base:addr (-n) in
              let down = B.load b ~base:addr n in
              let left = B.load b ~base:addr (-1) in
              let right = B.load b ~base:addr 1 in
              let s1 = B.binop b Instr.Add center up in
              let s2 = B.binop b Instr.Add s1 down in
              let s3 = B.binop b Instr.Add s2 left in
              let s4 = B.binop b Instr.Add s3 right in
              let avg = B.binop b Instr.Div s4 five in
              let addr_out = B.binop b Instr.Add base_out idx in
              B.store b ~value:avg ~base:addr_out 0)
        in
        ())
  in
  B.ret b None;
  B.finish b

let bubble_sort ?(n = 16) () =
  let b = B.create ~name:"bubble_sort" ~params:[] in
  let base = B.const b 0 in
  let (_ : Var.t) =
    counted_loop b ~count:n (fun _i ->
        let (_ : Var.t) =
          counted_loop b ~count:(n - 1) (fun j ->
              let addr = B.binop b Instr.Add base j in
              let a = B.load b ~base:addr 0 in
              let c = B.load b ~base:addr 1 in
              let gt = B.binop b Instr.Slt c a in
              let l_swap = B.fresh_label b "swap" in
              let l_cont = B.fresh_label b "cont" in
              B.branch b gt l_swap l_cont;
              B.start_block b l_swap;
              B.store b ~value:c ~base:addr 0;
              B.store b ~value:a ~base:addr 1;
              B.jump b l_cont;
              B.start_block b l_cont)
        in
        ())
  in
  B.ret b None;
  B.finish b

let fib ?(n = 30) () =
  let b = B.create ~name:"fib" ~params:[] in
  let x = B.const b 0 in
  let y = B.const b 1 in
  let (_ : Var.t) =
    counted_loop b ~count:n (fun _ ->
        let t = B.binop b Instr.Add x y in
        B.emit b (Instr.Unop (Instr.Mov, x, y));
        B.emit b (Instr.Unop (Instr.Mov, y, t)))
  in
  let out = B.const b 5000 in
  B.store b ~value:x ~base:out 0;
  B.ret b (Some x);
  B.finish b

let dotprod ?(n = 64) () =
  let b = B.create ~name:"dotprod" ~params:[] in
  let base_x = B.const b 0 in
  let base_y = B.const b 1000 in
  let acc = B.const b 0 in
  let (_ : Var.t) =
    counted_loop b ~count:n (fun i ->
        let ax = B.binop b Instr.Add base_x i in
        let ay = B.binop b Instr.Add base_y i in
        let x = B.load b ~base:ax 0 in
        let y = B.load b ~base:ay 0 in
        let prod = B.binop b Instr.Mul x y in
        accumulate b Instr.Add acc prod)
  in
  let out = B.const b 5000 in
  B.store b ~value:acc ~base:out 0;
  B.ret b (Some acc);
  B.finish b

let vecadd ?(n = 64) () =
  let b = B.create ~name:"vecadd" ~params:[] in
  let base_x = B.const b 0 in
  let base_y = B.const b 1000 in
  let base_z = B.const b 2000 in
  let (_ : Var.t) =
    counted_loop b ~count:n (fun i ->
        let ax = B.binop b Instr.Add base_x i in
        let ay = B.binop b Instr.Add base_y i in
        let x = B.load b ~base:ax 0 in
        let y = B.load b ~base:ay 0 in
        let s = B.binop b Instr.Add x y in
        let az = B.binop b Instr.Add base_z i in
        B.store b ~value:s ~base:az 0)
  in
  B.ret b None;
  B.finish b

let horner ?(degree = 12) ?(n = 32) () =
  let b = B.create ~name:"horner" ~params:[] in
  let base_coef = B.const b 3000 in
  let base_x = B.const b 0 in
  let base_y = B.const b 4000 in
  let coefs = List.init (degree + 1) (fun k -> B.load b ~base:base_coef k) in
  let (_ : Var.t) =
    counted_loop b ~count:n (fun i ->
        let ax = B.binop b Instr.Add base_x i in
        let x = B.load b ~base:ax 0 in
        match coefs with
        | [] -> assert false
        | highest :: rest ->
          let acc = B.mov b highest in
          List.iter
            (fun coef ->
              accumulate b Instr.Mul acc x;
              accumulate b Instr.Add acc coef)
            rest;
          let ay = B.binop b Instr.Add base_y i in
          B.store b ~value:acc ~base:ay 0)
  in
  B.ret b None;
  B.finish b

let scale ?(n = 64) () =
  (* y[i] = k * x[i], with the scale factor naively reloaded from memory
     every iteration — the canonical register-promotion target. *)
  let b = B.create ~name:"scale" ~params:[] in
  let base_k = B.const b 3000 in
  let base_x = B.const b 0 in
  let base_y = B.const b 4000 in
  let (_ : Var.t) =
    counted_loop b ~count:n (fun i ->
        let k = B.load b ~base:base_k 0 in
        let ax = B.binop b Instr.Add base_x i in
        let x = B.load b ~base:ax 0 in
        let p = B.binop b Instr.Mul x k in
        let ay = B.binop b Instr.Add base_y i in
        B.store b ~value:p ~base:ay 0)
  in
  B.ret b None;
  B.finish b

let high_pressure ?(live = 24) ?(iters = 64) () =
  let b = B.create ~name:"high_pressure" ~params:[] in
  let vars = Array.init live (fun k -> B.const b (k + 1)) in
  let (_ : Var.t) =
    counted_loop b ~count:iters (fun _ ->
        Array.iteri
          (fun k v ->
            let next = vars.((k + 1) mod live) in
            B.emit b (Instr.Binop (Instr.Add, v, v, next)))
          vars)
  in
  let acc = B.const b 0 in
  Array.iter (fun v -> accumulate b Instr.Add acc v) vars;
  let out = B.const b 5000 in
  B.store b ~value:acc ~base:out 0;
  B.ret b (Some acc);
  B.finish b

let conv2d ?(n = 8) () =
  (* 3x3 convolution over an n x n image; the nine coefficients live in
     registers for the whole kernel. *)
  let b = B.create ~name:"conv2d" ~params:[] in
  let base_in = B.const b 0 in
  let base_out = B.const b 2000 in
  let base_coef = B.const b 3000 in
  let nv = B.const b n in
  let one = B.const b 1 in
  let coefs = Array.init 9 (fun k -> B.load b ~base:base_coef k) in
  let inner = max 1 (n - 2) in
  let (_ : Var.t) =
    counted_loop b ~count:inner (fun i0 ->
        let (_ : Var.t) =
          counted_loop b ~count:inner (fun j0 ->
              let i = B.binop b Instr.Add i0 one in
              let j = B.binop b Instr.Add j0 one in
              let row = B.binop b Instr.Mul i nv in
              let idx = B.binop b Instr.Add row j in
              let addr = B.binop b Instr.Add base_in idx in
              let acc = B.const b 0 in
              List.iteri
                (fun k off ->
                  let v = B.load b ~base:addr off in
                  let p = B.binop b Instr.Mul v coefs.(k) in
                  accumulate b Instr.Add acc p)
                [ -n - 1; -n; -n + 1; -1; 0; 1; n - 1; n; n + 1 ];
              let addr_out = B.binop b Instr.Add base_out idx in
              B.store b ~value:acc ~base:addr_out 0)
        in
        ())
  in
  B.ret b None;
  B.finish b

let histogram ?(n = 64) ?(bins = 16) () =
  (* Data-dependent addressing: bump bin[data[i] mod bins]. *)
  let b = B.create ~name:"histogram" ~params:[] in
  let base_data = B.const b 0 in
  let base_bins = B.const b 2000 in
  let binsv = B.const b bins in
  let one = B.const b 1 in
  let (_ : Var.t) =
    counted_loop b ~count:n (fun i ->
        let addr = B.binop b Instr.Add base_data i in
        let v = B.load b ~base:addr 0 in
        let bin = B.binop b Instr.Rem v binsv in
        let baddr = B.binop b Instr.Add base_bins bin in
        let count = B.load b ~base:baddr 0 in
        let bumped = B.binop b Instr.Add count one in
        B.store b ~value:bumped ~base:baddr 0)
  in
  B.ret b None;
  B.finish b

let transpose ?(n = 8) () =
  let b = B.create ~name:"transpose" ~params:[] in
  let base_in = B.const b 0 in
  let base_out = B.const b 2000 in
  let nv = B.const b n in
  let (_ : Var.t) =
    counted_loop b ~count:n (fun i ->
        let (_ : Var.t) =
          counted_loop b ~count:n (fun j ->
              let row = B.binop b Instr.Mul i nv in
              let idx = B.binop b Instr.Add row j in
              let addr = B.binop b Instr.Add base_in idx in
              let v = B.load b ~base:addr 0 in
              let row' = B.binop b Instr.Mul j nv in
              let idx' = B.binop b Instr.Add row' i in
              let addr' = B.binop b Instr.Add base_out idx' in
              B.store b ~value:v ~base:addr' 0)
        in
        ())
  in
  B.ret b None;
  B.finish b

let max_reduce ?(n = 64) () =
  (* Branchy reduction: per-element diamond, data-dependent control. *)
  let b = B.create ~name:"max_reduce" ~params:[] in
  let base = B.const b 0 in
  let best = B.const b min_int in
  let (_ : Var.t) =
    counted_loop b ~count:n (fun i ->
        let addr = B.binop b Instr.Add base i in
        let v = B.load b ~base:addr 0 in
        let gt = B.binop b Instr.Slt best v in
        let l_take = B.fresh_label b "take" in
        let l_skip = B.fresh_label b "skip" in
        B.branch b gt l_take l_skip;
        B.start_block b l_take;
        B.emit b (Instr.Unop (Instr.Mov, best, v));
        B.jump b l_skip;
        B.start_block b l_skip)
  in
  let out = B.const b 5000 in
  B.store b ~value:best ~base:out 0;
  B.ret b (Some best);
  B.finish b

(* Rename a function and prefix every variable, so that several kernels
   can live in one program without name collisions (execution traces
   identify accesses by variable name only). *)
let rename_with_prefix (f : Func.t) ~name ~prefix =
  let pv v = Var.of_string (prefix ^ Var.to_string v) in
  let rename_term = function
    | Block.Jump l -> Block.Jump l
    | Block.Branch (c, t, e) -> Block.Branch (pv c, t, e)
    | Block.Return (Some v) -> Block.Return (Some (pv v))
    | Block.Return None -> Block.Return None
  in
  let blocks =
    List.map
      (fun (b : Block.t) ->
        Block.make b.Block.label
          (Array.to_list b.Block.body |> List.map (Instr.map_vars pv))
          (rename_term b.Block.term))
      f.Func.blocks
  in
  Func.make ~name ~params:(List.map pv f.Func.params) blocks

let multiproc_program () =
  let filter = rename_with_prefix (fir ~n:16 ~taps:4 ()) ~name:"filter" ~prefix:"f_" in
  let checksum = rename_with_prefix (crc ~bytes:16 ()) ~name:"checksum" ~prefix:"c_" in
  let b = B.create ~name:"main" ~params:[] in
  let (_ : Var.t) =
    counted_loop b ~count:4 (fun _ ->
        B.call_void b "filter" [];
        B.call_void b "checksum" [])
  in
  B.ret b None;
  Program.of_funcs [ B.finish b; filter; checksum ]

let all =
  [
    ("matmul", matmul ());
    ("fir", fir ());
    ("idct_row", idct_row ());
    ("crc", crc ());
    ("stencil", stencil ());
    ("bubble_sort", bubble_sort ());
    ("fib", fib ());
    ("dotprod", dotprod ());
    ("vecadd", vecadd ());
    ("scale", scale ());
    ("horner", horner ());
    ("conv2d", conv2d ());
    ("histogram", histogram ());
    ("transpose", transpose ());
    ("max_reduce", max_reduce ());
    ("high_pressure", high_pressure ());
  ]

let find name = List.assoc_opt name all
