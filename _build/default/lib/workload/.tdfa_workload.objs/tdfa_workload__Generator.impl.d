lib/workload/generator.ml: Array Builder Func Instr Kernels List Printf Program Random Tdfa_ir Var
