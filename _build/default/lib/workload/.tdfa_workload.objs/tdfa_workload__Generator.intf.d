lib/workload/generator.mli: Func Program Tdfa_ir
