lib/workload/kernels.mli: Builder Func Program Tdfa_ir Var
