lib/workload/kernels.ml: Array Block Builder Func Instr List Program Tdfa_ir Var
