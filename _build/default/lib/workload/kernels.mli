(** Benchmark kernels expressed in the IR — the register access patterns
    of the multimedia/DSP workloads that motivate the paper. Sizes are
    kept small enough that a full interpreted trace takes milliseconds,
    yet large enough to reach thermal steady state in simulation.

    Memory map convention: each kernel keeps its arrays at distinct
    1000-word bases, far below {!Tdfa_regalloc.Spill.base_address}. *)

open Tdfa_ir

val counted_loop : Builder.t -> count:int -> (Var.t -> unit) -> Var.t
(** Emit the canonical [for (i = 0; i < count; i += 1)] scaffold around
    [body], leaving the exit block open; returns the induction variable.
    Shared by the kernels and the random {!Generator}. *)

val matmul : ?n:int -> unit -> Func.t
(** Dense [n x n] matrix multiply (default 8): three nested loops, a hot
    accumulator, medium pressure. *)

val fir : ?n:int -> ?taps:int -> unit -> Func.t
(** FIR filter (default 64 samples, 8 taps): coefficients pinned in
    registers and reused every iteration — the classic RF hot spot. *)

val idct_row : ?rows:int -> unit -> Func.t
(** 8-point IDCT-like butterfly applied to each row (default 8 rows):
    high instantaneous register pressure. *)

val crc : ?bytes:int -> unit -> Func.t
(** Bitwise CRC over a buffer (default 32 bytes): two nested loops over a
    tiny, extremely hot variable set. *)

val stencil : ?n:int -> unit -> Func.t
(** 5-point stencil over an [n x n] grid (default 8). *)

val bubble_sort : ?n:int -> unit -> Func.t
(** In-memory bubble sort (default 16 elements): branchy CFG, data-
    dependent control flow. *)

val fib : ?n:int -> unit -> Func.t
(** Iterative Fibonacci (default 30): three variables hammered in a tight
    loop — the extreme hot spot. *)

val dotprod : ?n:int -> unit -> Func.t
val vecadd : ?n:int -> unit -> Func.t

val scale : ?n:int -> unit -> Func.t
(** [y\[i\] = k * x\[i\]] with the factor naively reloaded from memory in
    every iteration — the canonical register-promotion target. *)

val horner : ?degree:int -> ?n:int -> unit -> Func.t
(** Polynomial evaluation with [degree]+1 coefficients held in registers
    (default degree 12, 32 evaluations) — pressure scales with the
    degree. *)

val conv2d : ?n:int -> unit -> Func.t
(** 3x3 convolution over an [n x n] image (default 8); nine coefficient
    registers stay hot for the whole kernel. *)

val histogram : ?n:int -> ?bins:int -> unit -> Func.t
(** Binning with data-dependent addressing (default 64 samples, 16
    bins). *)

val transpose : ?n:int -> unit -> Func.t
(** Matrix transpose — memory-bound, low arithmetic density. *)

val max_reduce : ?n:int -> unit -> Func.t
(** Branchy max reduction: one data-dependent diamond per element. *)

val high_pressure : ?live:int -> ?iters:int -> unit -> Func.t
(** Synthetic kernel keeping [live] variables (default 24) simultaneously
    live inside a loop — the register-pressure knob of experiment E3. *)

val rename_with_prefix : Func.t -> name:string -> prefix:string -> Func.t
(** Rename a function and prefix all of its variables, so several kernels
    can share one program (and one trace namespace). *)

val multiproc_program : unit -> Program.t
(** A three-function program — [main] calls a FIR filter and a CRC
    checksum in a loop — for the interprocedural experiments. *)

val all : (string * Func.t) list
(** Every kernel at its default size, in a stable order. *)

val find : string -> Func.t option
