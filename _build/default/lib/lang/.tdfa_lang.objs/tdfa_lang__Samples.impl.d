lib/lang/samples.ml: Front List
