lib/lang/lexer.mli:
