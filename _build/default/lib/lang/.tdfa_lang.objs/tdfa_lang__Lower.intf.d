lib/lang/lower.mli: Ast Tdfa_ir
