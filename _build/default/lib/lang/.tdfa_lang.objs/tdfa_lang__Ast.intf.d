lib/lang/ast.mli:
