lib/lang/front.ml: List Lower Parser Printf Tdfa_ir
