lib/lang/front.mli: Tdfa_ir
