lib/lang/samples.mli: Tdfa_ir
