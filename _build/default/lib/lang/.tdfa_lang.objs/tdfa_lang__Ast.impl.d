lib/lang/ast.ml:
