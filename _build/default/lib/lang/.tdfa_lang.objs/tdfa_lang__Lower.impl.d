lib/lang/lower.ml: Ast Builder Hashtbl Instr List Option Printf Program Tdfa_ir Validate Var
