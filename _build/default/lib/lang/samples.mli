(** TC source renditions of several built-in kernels, kept observably
    equivalent to their {!Tdfa_workload.Kernels} builder versions (same
    memory map, same results) — both living documentation of the language
    and a differential test bed for the front end. *)

val all : (string * string) list
(** (name, source) pairs; names match the corresponding kernels. *)

val find : string -> string option
val compile : string -> Tdfa_ir.Func.t
(** @raise Not_found for an unknown name. *)
