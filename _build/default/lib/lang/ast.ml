type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | Land
  | Lor

type unop = Neg | Not

type expr =
  | Int of int
  | Var of string
  | Mem of expr
  | Unary of unop * expr
  | Binary of binop * expr * expr
  | Call of string * expr list

type stmt =
  | Decl of string * expr option
  | Assign of string * expr
  | Mem_store of expr * expr
  | If of expr * block * block option
  | While of expr * block
  | For of stmt option * expr * stmt option * block
  | Return of expr option
  | Expr of expr

and block = stmt list

type func = { name : string; params : string list; body : block }

type program = func list
