let fib =
  {|
// Iterative Fibonacci; result also stored for inspection.
fn fib() {
  var x = 0;
  var y = 1;
  for (var i = 0; i < 30; i = i + 1) {
    var t = x + y;
    x = y;
    y = t;
  }
  mem[5000] = x;
  return x;
}
|}

let dotprod =
  {|
fn dotprod() {
  var acc = 0;
  for (var i = 0; i < 64; i = i + 1) {
    acc = acc + mem[0 + i] * mem[1000 + i];
  }
  mem[5000] = acc;
  return acc;
}
|}

let vecadd =
  {|
fn vecadd() {
  for (var i = 0; i < 64; i = i + 1) {
    mem[2000 + i] = mem[0 + i] + mem[1000 + i];
  }
}
|}

let scale =
  {|
// The scale factor is naively reloaded every iteration - the promotion
// pass hoists it.
fn scale() {
  for (var i = 0; i < 64; i = i + 1) {
    mem[4000 + i] = mem[0 + i] * mem[3000];
  }
}
|}

let matmul =
  {|
// Dense 8x8 matrix multiply: C = A * B with A at 0, B at 1000, C at 2000.
fn matmul() {
  for (var i = 0; i < 8; i = i + 1) {
    for (var j = 0; j < 8; j = j + 1) {
      var acc = 0;
      for (var k = 0; k < 8; k = k + 1) {
        acc = acc + mem[i * 8 + k] * mem[1000 + k * 8 + j];
      }
      mem[2000 + i * 8 + j] = acc;
    }
  }
}
|}

let max_reduce =
  {|
fn max_reduce() {
  var best = -1;
  for (var i = 0; i < 64; i = i + 1) {
    if (best < mem[i]) {
      best = mem[i];
    }
  }
  mem[5000] = best;
  return best;
}
|}

let crc =
  {|
// Bitwise CRC over 32 bytes, branchless inner step (poly 0xA001).
fn crc() {
  var c = 65535;
  for (var i = 0; i < 32; i = i + 1) {
    c = c ^ mem[i];
    for (var k = 0; k < 8; k = k + 1) {
      c = (c >> 1) ^ 40961 * (c & 1);
    }
  }
  mem[5000] = c;
  return c;
}
|}

let stencil =
  {|
// 5-point stencil over the interior of an 8x8 grid.
fn stencil() {
  for (var i0 = 0; i0 < 6; i0 = i0 + 1) {
    for (var j0 = 0; j0 < 6; j0 = j0 + 1) {
      var idx = (i0 + 1) * 8 + j0 + 1;
      var sum = mem[idx] + mem[idx - 8] + mem[idx + 8] + mem[idx - 1]
              + mem[idx + 1];
      mem[2000 + idx] = sum / 5;
    }
  }
}
|}

let all =
  [
    ("fib", fib);
    ("dotprod", dotprod);
    ("vecadd", vecadd);
    ("scale", scale);
    ("matmul", matmul);
    ("max_reduce", max_reduce);
    ("crc", crc);
    ("stencil", stencil);
  ]

let find name = List.assoc_opt name all

let compile name =
  match find name with
  | Some src -> Front.compile_func_string src
  | None -> raise Not_found
