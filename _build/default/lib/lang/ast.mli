(** Abstract syntax of TC ("thermal C"), the small C-like source language
    that lowers onto the IR — so kernels can be written as text instead
    of via the builder. See {!Parser} for the grammar. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And  (** bitwise [&] *)
  | Or  (** bitwise [|] *)
  | Xor
  | Shl
  | Shr
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | Land  (** logical [&&], eager, 0/1-valued *)
  | Lor  (** logical [||], eager, 0/1-valued *)

type unop = Neg | Not  (** [!]: logical negation, 0/1-valued *)

type expr =
  | Int of int
  | Var of string
  | Mem of expr  (** [mem\[e\]] *)
  | Unary of unop * expr
  | Binary of binop * expr * expr
  | Call of string * expr list

type stmt =
  | Decl of string * expr option  (** [var x;] or [var x = e;] *)
  | Assign of string * expr
  | Mem_store of expr * expr  (** [mem\[e1\] = e2;] *)
  | If of expr * block * block option
  | While of expr * block
  | For of stmt option * expr * stmt option * block
      (** init and step restricted to [Decl]/[Assign]/[Mem_store] *)
  | Return of expr option
  | Expr of expr  (** expression statement — calls *)

and block = stmt list

type func = { name : string; params : string list; body : block }

type program = func list
