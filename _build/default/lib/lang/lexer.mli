(** Tokenizer for TC. Comments run from [//] to end of line. *)

type token =
  | INT of int
  | IDENT of string
  | KW of string  (** fn var if else while for return mem *)
  | OP of string  (** operators and punctuation *)
  | EOF

type spanned = { token : token; line : int }

exception Error of string
(** Message includes the line number. *)

val tokenize : string -> spanned list
(** Ends with an [EOF] token. *)
