exception Error of string

let compile_string src =
  match Lower.lower_program (Parser.parse_program src) with
  | p -> p
  | exception Parser.Error m -> raise (Error m)
  | exception Lower.Error m -> raise (Error m)

let compile_func_string src =
  let p = compile_string src in
  match Tdfa_ir.Program.funcs p with
  | [ f ] -> f
  | fs -> raise (Error (Printf.sprintf "expected one function, found %d" (List.length fs)))
