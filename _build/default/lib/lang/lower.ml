open Tdfa_ir

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type env = {
  builder : Builder.t;
  vars : (string, Var.t) Hashtbl.t;
}

let lookup env name =
  match Hashtbl.find_opt env.vars name with
  | Some v -> v
  | None -> fail "variable %s used before declaration" name

let declare env name =
  if Hashtbl.mem env.vars name then fail "variable %s redeclared" name;
  let v = Var.of_string ("u_" ^ name) in
  Hashtbl.replace env.vars name v;
  v

let ir_binop = function
  | Ast.Add -> Instr.Add
  | Ast.Sub -> Instr.Sub
  | Ast.Mul -> Instr.Mul
  | Ast.Div -> Instr.Div
  | Ast.Rem -> Instr.Rem
  | Ast.And -> Instr.And
  | Ast.Or -> Instr.Or
  | Ast.Xor -> Instr.Xor
  | Ast.Shl -> Instr.Shl
  | Ast.Shr -> Instr.Shr
  | Ast.Lt -> Instr.Slt
  | Ast.Le -> Instr.Sle
  | Ast.Eq -> Instr.Seq
  | Ast.Ne -> Instr.Sne
  | Ast.Gt | Ast.Ge | Ast.Land | Ast.Lor -> assert false

let rec lower_expr env (e : Ast.expr) : Var.t =
  let b = env.builder in
  match e with
  | Ast.Int k -> Builder.const b k
  | Ast.Var x -> lookup env x
  | Ast.Mem addr ->
    let base = lower_expr env addr in
    Builder.load b ~base 0
  | Ast.Unary (Ast.Neg, e1) -> Builder.unop b Instr.Neg (lower_expr env e1)
  | Ast.Unary (Ast.Not, e1) ->
    let v = lower_expr env e1 in
    let zero = Builder.const b 0 in
    Builder.binop b Instr.Seq v zero
  | Ast.Binary (Ast.Gt, e1, e2) ->
    (* a > b  ==  b < a *)
    let v1 = lower_expr env e1 in
    let v2 = lower_expr env e2 in
    Builder.binop b Instr.Slt v2 v1
  | Ast.Binary (Ast.Ge, e1, e2) ->
    let v1 = lower_expr env e1 in
    let v2 = lower_expr env e2 in
    Builder.binop b Instr.Sle v2 v1
  | Ast.Binary (Ast.Land, e1, e2) ->
    let v1 = boolean env e1 in
    let v2 = boolean env e2 in
    Builder.binop b Instr.And v1 v2
  | Ast.Binary (Ast.Lor, e1, e2) ->
    let v1 = boolean env e1 in
    let v2 = boolean env e2 in
    Builder.binop b Instr.Or v1 v2
  | Ast.Binary (op, e1, e2) ->
    let v1 = lower_expr env e1 in
    let v2 = lower_expr env e2 in
    Builder.binop b (ir_binop op) v1 v2
  | Ast.Call (name, args) ->
    let vs = List.map (lower_expr env) args in
    Builder.call b name vs

(* Normalise to 0/1 (logical operators are eager in TC). *)
and boolean env e =
  let v = lower_expr env e in
  let zero = Builder.const env.builder 0 in
  Builder.binop env.builder Instr.Sne v zero

(* Compile an expression *into* a destination variable, so accumulator
   updates produce [op d, d, s] directly. *)
let lower_into env dst (e : Ast.expr) =
  let b = env.builder in
  match e with
  | Ast.Int k -> Builder.emit b (Instr.Const (dst, k))
  | Ast.Var x -> Builder.emit b (Instr.Unop (Instr.Mov, dst, lookup env x))
  | Ast.Mem addr ->
    let base = lower_expr env addr in
    Builder.emit b (Instr.Load (dst, base, 0))
  | Ast.Unary (Ast.Neg, e1) ->
    Builder.emit b (Instr.Unop (Instr.Neg, dst, lower_expr env e1))
  | Ast.Unary (Ast.Not, _)
  | Ast.Binary ((Ast.Gt | Ast.Ge | Ast.Land | Ast.Lor), _, _) ->
    let v = lower_expr env e in
    Builder.emit b (Instr.Unop (Instr.Mov, dst, v))
  | Ast.Binary (op, e1, e2) ->
    let v1 = lower_expr env e1 in
    let v2 = lower_expr env e2 in
    Builder.emit b (Instr.Binop (ir_binop op, dst, v1, v2))
  | Ast.Call (name, args) ->
    let vs = List.map (lower_expr env) args in
    Builder.emit b (Instr.Call (Some dst, name, vs))

(* Statements; returns true when the statement always terminates the
   current block with a return. *)
let rec lower_stmt env (s : Ast.stmt) : bool =
  let b = env.builder in
  match s with
  | Ast.Decl (x, init) ->
    let v = declare env x in
    (match init with
     | Some e -> lower_into env v e
     | None -> Builder.emit b (Instr.Const (v, 0)));
    false
  | Ast.Assign (x, e) ->
    lower_into env (lookup env x) e;
    false
  | Ast.Mem_store (addr, value) ->
    let v = lower_expr env value in
    let base = lower_expr env addr in
    Builder.store b ~value:v ~base 0;
    false
  | Ast.Expr (Ast.Call (name, args)) ->
    let vs = List.map (lower_expr env) args in
    Builder.call_void b name vs;
    false
  | Ast.Expr e ->
    let (_ : Var.t) = lower_expr env e in
    false
  | Ast.Return value ->
    let v = Option.map (lower_expr env) value in
    Builder.ret b v;
    true
  | Ast.If (cond, then_, else_) -> lower_if env cond then_ else_
  | Ast.While (cond, body) ->
    lower_loop env ~cond ~step:None body;
    false
  | Ast.For (init, cond, step, body) ->
    (match init with
     | Some s0 -> ignore (lower_stmt env s0)
     | None -> ());
    lower_loop env ~cond ~step body;
    false

and lower_if env cond then_ else_ =
  let b = env.builder in
  let c = lower_expr env cond in
  let l_then = Builder.fresh_label b "then" in
  let l_else = Builder.fresh_label b "else" in
  let l_join = Builder.fresh_label b "join" in
  (match else_ with
   | Some _ -> Builder.branch b c l_then l_else
   | None -> Builder.branch b c l_then l_join);
  Builder.start_block b l_then;
  let t_term = lower_block env then_ in
  if not t_term then Builder.jump b l_join;
  let e_term =
    match else_ with
    | Some body ->
      Builder.start_block b l_else;
      let term = lower_block env body in
      if not term then Builder.jump b l_join;
      term
    | None -> false
  in
  if t_term && e_term then true
  else begin
    Builder.start_block b l_join;
    false
  end

and lower_loop env ~cond ~step body =
  let b = env.builder in
  let l_header = Builder.fresh_label b "hdr" in
  let l_body = Builder.fresh_label b "body" in
  let l_exit = Builder.fresh_label b "exit" in
  Builder.jump b l_header;
  Builder.start_block b l_header;
  let c = lower_expr env cond in
  Builder.branch b c l_body l_exit;
  Builder.start_block b l_body;
  let terminated = lower_block env body in
  if not terminated then begin
    (match step with
     | Some s -> ignore (lower_stmt env s)
     | None -> ());
    Builder.jump b l_header
  end;
  Builder.start_block b l_exit

and lower_block env stmts =
  match stmts with
  | [] -> false
  | s :: rest ->
    let terminated = lower_stmt env s in
    if terminated && rest <> [] then fail "unreachable code after return";
    if terminated then true else lower_block env rest

let lower_func (f : Ast.func) =
  let builder =
    Builder.create ~name:f.Ast.name
      ~params:(List.map (fun p -> "u_" ^ p) f.Ast.params)
  in
  let env = { builder; vars = Hashtbl.create 16 } in
  List.iteri
    (fun i p ->
      if Hashtbl.mem env.vars p then fail "parameter %s duplicated" p;
      Hashtbl.replace env.vars p (Builder.param builder i))
    f.Ast.params;
  let terminated = lower_block env f.Ast.body in
  if not terminated then Builder.ret builder None;
  let func = Builder.finish builder in
  match Validate.check func with
  | Ok () -> func
  | Error msg -> fail "internal lowering error:\n%s" msg

let lower_program fns = Program.of_funcs (List.map lower_func fns)
