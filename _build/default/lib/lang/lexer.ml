type token =
  | INT of int
  | IDENT of string
  | KW of string
  | OP of string
  | EOF

type spanned = { token : token; line : int }

exception Error of string

let keywords = [ "fn"; "var"; "if"; "else"; "while"; "for"; "return"; "mem" ]

let is_digit c = c >= '0' && c <= '9'

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || is_digit c

(* Two-character operators first, then single characters. *)
let two_char_ops = [ "<="; ">="; "=="; "!="; "<<"; ">>"; "&&"; "||" ]
let one_char_ops = "+-*/%&|^<>=!(){}[],;"

let tokenize src =
  let n = String.length src in
  let line = ref 1 in
  let out = ref [] in
  let push t = out := { token = t; line = !line } :: !out in
  let rec scan i =
    if i >= n then push EOF
    else
      let c = src.[i] in
      if c = '\n' then begin
        incr line;
        scan (i + 1)
      end
      else if c = ' ' || c = '\t' || c = '\r' then scan (i + 1)
      else if c = '/' && i + 1 < n && src.[i + 1] = '/' then begin
        let rec skip j = if j < n && src.[j] <> '\n' then skip (j + 1) else j in
        scan (skip i)
      end
      else if is_digit c then begin
        let rec stop j = if j < n && is_digit src.[j] then stop (j + 1) else j in
        let j = stop i in
        (match int_of_string_opt (String.sub src i (j - i)) with
         | Some k -> push (INT k)
         | None -> raise (Error (Printf.sprintf "line %d: bad integer" !line)));
        scan j
      end
      else if is_ident_start c then begin
        let rec stop j = if j < n && is_ident_char src.[j] then stop (j + 1) else j in
        let j = stop i in
        let word = String.sub src i (j - i) in
        push (if List.mem word keywords then KW word else IDENT word);
        scan j
      end
      else if i + 1 < n && List.mem (String.sub src i 2) two_char_ops then begin
        push (OP (String.sub src i 2));
        scan (i + 2)
      end
      else if String.contains one_char_ops c then begin
        push (OP (String.make 1 c));
        scan (i + 1)
      end
      else
        raise (Error (Printf.sprintf "line %d: unexpected character '%c'" !line c))
  in
  scan 0;
  List.rev !out
