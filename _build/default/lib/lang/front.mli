(** One-call front end: TC source text to IR. *)

exception Error of string
(** Wraps lexer, parser and lowering errors. *)

val compile_string : string -> Tdfa_ir.Program.t
val compile_func_string : string -> Tdfa_ir.Func.t
(** The source must contain exactly one function. *)
