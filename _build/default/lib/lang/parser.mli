(** Recursive-descent parser for TC.

    {v
      program := fn...
      fn      := "fn" ident "(" [ident {"," ident}] ")" block
      block   := "{" stmt... "}"
      stmt    := "var" ident ["=" expr] ";"
               | ident "=" expr ";"
               | "mem" "[" expr "]" "=" expr ";"
               | "if" "(" expr ")" block ["else" block]
               | "while" "(" expr ")" block
               | "for" "(" [simple] ";" expr ";" [simple] ")" block
               | "return" [expr] ";"
               | expr ";"
      simple  := "var" ident "=" expr | ident "=" expr
               | "mem" "[" expr "]" "=" expr
      expr    := precedence climbing over
                 "||" ; "&&" ; "|" ; "^" ; "&" ; "=="/"!=" ;
                 "<"/"<="/">"/">=" ; "<<"/">>" ; "+"/"-" ; "*"/"/"/"%"
      unary   := "-" | "!"
      primary := int | ident | ident "(" args ")" | "mem" "[" expr "]"
               | "(" expr ")"
    v} *)

exception Error of string

val parse_program : string -> Ast.program
val parse_expr : string -> Ast.expr
(** For tests. *)
