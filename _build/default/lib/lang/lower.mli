(** Lowering from the TC AST onto the IR.

    Design points that matter downstream:
    - assignments compile {e into} their destination ([x = x + 1] becomes
      [add x, x, one]), so canonical [for] loops produce exactly the
      counted-loop idiom the trip-count estimator recognises;
    - user variables are prefixed [u_] to keep them disjoint from
      compiler temporaries;
    - variables have function scope; redeclaration and use-before-
      declaration are errors, as is unreachable code after [return]. *)

exception Error of string

val lower_func : Ast.func -> Tdfa_ir.Func.t
val lower_program : Ast.program -> Tdfa_ir.Program.t
