exception Error of string

type state = { mutable toks : Lexer.spanned list }

let fail line msg = raise (Error (Printf.sprintf "line %d: %s" line msg))

let peek st =
  match st.toks with
  | [] -> { Lexer.token = Lexer.EOF; line = 0 }
  | t :: _ -> t

let next st =
  let t = peek st in
  (match st.toks with [] -> () | _ :: rest -> st.toks <- rest);
  t

let describe = function
  | Lexer.INT k -> string_of_int k
  | Lexer.IDENT s -> s
  | Lexer.KW s -> s
  | Lexer.OP s -> "'" ^ s ^ "'"
  | Lexer.EOF -> "end of input"

let expect_op st op =
  let t = next st in
  match t.Lexer.token with
  | Lexer.OP o when o = op -> ()
  | other -> fail t.Lexer.line (Printf.sprintf "expected '%s', found %s" op (describe other))

let expect_ident st =
  let t = next st in
  match t.Lexer.token with
  | Lexer.IDENT s -> s
  | other -> fail t.Lexer.line ("expected identifier, found " ^ describe other)

let at_op st op =
  match (peek st).Lexer.token with Lexer.OP o -> o = op | _ -> false

let at_kw st kw =
  match (peek st).Lexer.token with Lexer.KW k -> k = kw | _ -> false

(* Binary operator precedence: higher binds tighter. *)
let binop_of = function
  | "||" -> Some (Ast.Lor, 1)
  | "&&" -> Some (Ast.Land, 2)
  | "|" -> Some (Ast.Or, 3)
  | "^" -> Some (Ast.Xor, 4)
  | "&" -> Some (Ast.And, 5)
  | "==" -> Some (Ast.Eq, 6)
  | "!=" -> Some (Ast.Ne, 6)
  | "<" -> Some (Ast.Lt, 7)
  | "<=" -> Some (Ast.Le, 7)
  | ">" -> Some (Ast.Gt, 7)
  | ">=" -> Some (Ast.Ge, 7)
  | "<<" -> Some (Ast.Shl, 8)
  | ">>" -> Some (Ast.Shr, 8)
  | "+" -> Some (Ast.Add, 9)
  | "-" -> Some (Ast.Sub, 9)
  | "*" -> Some (Ast.Mul, 10)
  | "/" -> Some (Ast.Div, 10)
  | "%" -> Some (Ast.Rem, 10)
  | _ -> None

let rec parse_expression st min_prec =
  let lhs = parse_unary st in
  climb st lhs min_prec

and climb st lhs min_prec =
  match (peek st).Lexer.token with
  | Lexer.OP o -> (
    match binop_of o with
    | Some (op, prec) when prec >= min_prec ->
      let (_ : Lexer.spanned) = next st in
      (* Left-associative: the right operand binds one level tighter. *)
      let rhs = parse_expression st (prec + 1) in
      climb st (Ast.Binary (op, lhs, rhs)) min_prec
    | Some _ | None -> lhs)
  | Lexer.INT _ | Lexer.IDENT _ | Lexer.KW _ | Lexer.EOF -> lhs

and parse_unary st =
  if at_op st "-" then begin
    let (_ : Lexer.spanned) = next st in
    Ast.Unary (Ast.Neg, parse_unary st)
  end
  else if at_op st "!" then begin
    let (_ : Lexer.spanned) = next st in
    Ast.Unary (Ast.Not, parse_unary st)
  end
  else parse_primary st

and parse_primary st =
  let t = next st in
  match t.Lexer.token with
  | Lexer.INT k -> Ast.Int k
  | Lexer.IDENT name ->
    if at_op st "(" then begin
      let (_ : Lexer.spanned) = next st in
      let args = parse_args st in
      Ast.Call (name, args)
    end
    else Ast.Var name
  | Lexer.KW "mem" ->
    expect_op st "[";
    let e = parse_expression st 1 in
    expect_op st "]";
    Ast.Mem e
  | Lexer.OP "(" ->
    let e = parse_expression st 1 in
    expect_op st ")";
    e
  | other -> fail t.Lexer.line ("expected expression, found " ^ describe other)

and parse_args st =
  if at_op st ")" then begin
    let (_ : Lexer.spanned) = next st in
    []
  end
  else begin
    let rec loop acc =
      let e = parse_expression st 1 in
      if at_op st "," then begin
        let (_ : Lexer.spanned) = next st in
        loop (e :: acc)
      end
      else begin
        expect_op st ")";
        List.rev (e :: acc)
      end
    in
    loop []
  end

(* Simple statements usable as for-init / for-step (no trailing ';'). *)
let rec parse_simple st =
  if at_kw st "var" then begin
    let (_ : Lexer.spanned) = next st in
    let name = expect_ident st in
    expect_op st "=";
    Ast.Decl (name, Some (parse_expression st 1))
  end
  else if at_kw st "mem" then begin
    let (_ : Lexer.spanned) = next st in
    expect_op st "[";
    let addr = parse_expression st 1 in
    expect_op st "]";
    expect_op st "=";
    Ast.Mem_store (addr, parse_expression st 1)
  end
  else begin
    let name = expect_ident st in
    expect_op st "=";
    Ast.Assign (name, parse_expression st 1)
  end

and parse_stmt st =
  let t = peek st in
  match t.Lexer.token with
  | Lexer.KW "var" ->
    let (_ : Lexer.spanned) = next st in
    let name = expect_ident st in
    let init =
      if at_op st "=" then begin
        let (_ : Lexer.spanned) = next st in
        Some (parse_expression st 1)
      end
      else None
    in
    expect_op st ";";
    Ast.Decl (name, init)
  | Lexer.KW "mem" ->
    let s = parse_simple st in
    expect_op st ";";
    s
  | Lexer.KW "if" ->
    let (_ : Lexer.spanned) = next st in
    expect_op st "(";
    let cond = parse_expression st 1 in
    expect_op st ")";
    let then_ = parse_block st in
    let else_ =
      if at_kw st "else" then begin
        let (_ : Lexer.spanned) = next st in
        Some (parse_block st)
      end
      else None
    in
    Ast.If (cond, then_, else_)
  | Lexer.KW "while" ->
    let (_ : Lexer.spanned) = next st in
    expect_op st "(";
    let cond = parse_expression st 1 in
    expect_op st ")";
    Ast.While (cond, parse_block st)
  | Lexer.KW "for" ->
    let (_ : Lexer.spanned) = next st in
    expect_op st "(";
    let init = if at_op st ";" then None else Some (parse_simple st) in
    expect_op st ";";
    let cond = parse_expression st 1 in
    expect_op st ";";
    let step = if at_op st ")" then None else Some (parse_simple st) in
    expect_op st ")";
    Ast.For (init, cond, step, parse_block st)
  | Lexer.KW "return" ->
    let (_ : Lexer.spanned) = next st in
    let value =
      if at_op st ";" then None else Some (parse_expression st 1)
    in
    expect_op st ";";
    Ast.Return value
  | Lexer.IDENT name ->
    (* Assignment or expression statement (call). *)
    let (_ : Lexer.spanned) = next st in
    if at_op st "=" then begin
      let (_ : Lexer.spanned) = next st in
      let e = parse_expression st 1 in
      expect_op st ";";
      Ast.Assign (name, e)
    end
    else if at_op st "(" then begin
      let (_ : Lexer.spanned) = next st in
      let args = parse_args st in
      expect_op st ";";
      Ast.Expr (Ast.Call (name, args))
    end
    else fail t.Lexer.line "expected '=' or '(' after identifier"
  | other -> fail t.Lexer.line ("expected statement, found " ^ describe other)

and parse_block st =
  expect_op st "{";
  let rec loop acc =
    if at_op st "}" then begin
      let (_ : Lexer.spanned) = next st in
      List.rev acc
    end
    else loop (parse_stmt st :: acc)
  in
  loop []

let parse_fn st =
  let t = next st in
  (match t.Lexer.token with
   | Lexer.KW "fn" -> ()
   | other -> fail t.Lexer.line ("expected 'fn', found " ^ describe other));
  let name = expect_ident st in
  expect_op st "(";
  let params =
    if at_op st ")" then begin
      let (_ : Lexer.spanned) = next st in
      []
    end
    else begin
      let rec loop acc =
        let p = expect_ident st in
        if at_op st "," then begin
          let (_ : Lexer.spanned) = next st in
          loop (p :: acc)
        end
        else begin
          expect_op st ")";
          List.rev (p :: acc)
        end
      in
      loop []
    end
  in
  { Ast.name; params; body = parse_block st }

let parse_program src =
  let st = { toks = (try Lexer.tokenize src with Lexer.Error m -> raise (Error m)) } in
  let rec loop acc =
    match (peek st).Lexer.token with
    | Lexer.EOF -> List.rev acc
    | Lexer.INT _ | Lexer.IDENT _ | Lexer.KW _ | Lexer.OP _ ->
      loop (parse_fn st :: acc)
  in
  let fns = loop [] in
  if fns = [] then raise (Error "no functions in input");
  fns

let parse_expr src =
  let st = { toks = (try Lexer.tokenize src with Lexer.Error m -> raise (Error m)) } in
  let e = parse_expression st 1 in
  match (peek st).Lexer.token with
  | Lexer.EOF -> e
  | other -> fail (peek st).Lexer.line ("trailing input: " ^ describe other)
