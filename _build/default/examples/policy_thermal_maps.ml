(* The motivating example of the paper (Fig. 1): the same program,
   register-allocated under different assignment policies, produces very
   different register-file thermal maps. Ground truth comes from
   executing the program and driving the RC thermal model with the access
   trace.

   Run with: dune exec examples/policy_thermal_maps.exe *)

open Tdfa_floorplan
open Tdfa_thermal
open Tdfa_exec
open Tdfa_regalloc
open Tdfa_workload

let layout = Layout.make ~rows:8 ~cols:8 ()
let model = Rc_model.build layout Params.default

let thermal_map_of func policy =
  let alloc = Alloc.allocate func layout ~policy in
  let outcome = Interp.run_func alloc.Alloc.func in
  Driver.steady_temps model outcome.Interp.trace ~cell_of_var:(fun v ->
      Assignment.cell_of_var alloc.Alloc.assignment v)

let () =
  (* A filter kernel with ~50% register pressure, where the chessboard
     pattern of Fig. 1(c) is exactly realisable. *)
  let func = Kernels.high_pressure ~live:28 ~iters:64 () in
  let policies =
    [ ("first-fit", Policy.First_fit);
      ("random", Policy.Random 7);
      ("chessboard", Policy.Chessboard);
      ("thermal-spread", Policy.Thermal_spread) ]
  in
  let maps = List.map (fun (_, p) -> thermal_map_of func p) policies in
  let lo =
    List.fold_left
      (fun acc m -> Float.min acc (Array.fold_left Float.min infinity m))
      infinity maps
  in
  let hi =
    List.fold_left
      (fun acc m -> Float.max acc (Array.fold_left Float.max neg_infinity m))
      neg_infinity maps
  in
  let rendered =
    List.map (fun m -> Heatmap.render_normalized ~lo ~hi layout m) maps
  in
  print_string
    (Heatmap.side_by_side ~titles:(List.map fst policies) rendered);
  print_newline ();
  List.iter2
    (fun (name, _) m ->
      Format.printf "%-15s %a@\n" name Metrics.pp_summary
        (Metrics.summarize layout m))
    policies maps
