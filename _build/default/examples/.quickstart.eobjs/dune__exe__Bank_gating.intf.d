examples/bank_gating.mli:
