examples/vliw_binding.mli:
