examples/convergence_study.ml: Alloc Analysis Kernels Layout List Policy Printf Setup Tdfa_core Tdfa_floorplan Tdfa_regalloc Tdfa_workload Transfer
