examples/policy_thermal_maps.mli:
