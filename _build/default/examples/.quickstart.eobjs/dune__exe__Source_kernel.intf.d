examples/source_kernel.mli:
