examples/vliw_binding.ml: Array Binding Bundler Fu_thermal Kernels List Machine Printf String Tdfa_thermal Tdfa_vliw Tdfa_workload
