examples/quickstart.mli:
