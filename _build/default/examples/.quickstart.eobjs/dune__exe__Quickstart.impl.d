examples/quickstart.ml: Alloc Analysis Assignment Builder Instr Label Layout List Policy Printer Printf Setup Tdfa_core Tdfa_floorplan Tdfa_ir Tdfa_regalloc Tdfa_thermal Thermal_state
