(* Temperature-aware VLIW operation binding (the setting of the paper's
   reference [4], Schafer et al.): the same bundles, issued on the same
   cycles, produce very different functional-unit thermal maps depending
   on which FU executes each operation.

   Run with: dune exec examples/vliw_binding.exe *)

open Tdfa_workload
open Tdfa_vliw

let () =
  let machine = Machine.make ~width:4 () in
  let func = Kernels.idct_row () in
  let scheduled = Bundler.schedule_func ~width:4 func in
  Printf.printf
    "idct_row on a 4-wide VLIW: %d bundles, %.0f%% slot utilization\n\n"
    (Bundler.bundle_count scheduled)
    (100.0 *. Bundler.utilization ~width:4 scheduled);
  Printf.printf "%-12s %10s %10s   %s\n" "binding" "peak(K)" "range(K)"
    "per-FU temperatures";
  List.iter
    (fun policy ->
      let temps, m = Fu_thermal.evaluate machine func policy in
      let cells =
        Array.to_list temps
        |> List.map (Printf.sprintf "%.2f")
        |> String.concat "  "
      in
      Printf.printf "%-12s %10.2f %10.2f   [%s]\n" (Binding.name policy)
        m.Tdfa_thermal.Metrics.peak_k m.Tdfa_thermal.Metrics.range_k cells)
    Binding.all;
  print_newline ();
  print_endline
    "fixed binding concentrates work on FU0; rotating or temperature-aware\n\
     binding homogenises the FU array at zero performance cost."
