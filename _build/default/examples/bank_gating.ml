(* The compromise called out in §4: spreading register assignments
   homogenises temperature but keeps every bank powered, while packing
   assignments into few banks lets the others be power-gated (saving
   leakage) at the cost of concentrated heat.

   Run with: dune exec examples/bank_gating.exe *)

open Tdfa_floorplan
open Tdfa_thermal
open Tdfa_exec
open Tdfa_regalloc
open Tdfa_workload

let layout = Layout.make ~rows:8 ~cols:8 ()
let model = Rc_model.build layout Params.default
let banks = 4

let () =
  let func = Kernels.matmul () in
  Printf.printf "%-15s %6s %12s %9s %9s %10s\n" "policy" "banks"
    "leakage(mW)" "peak(K)" "range(K)" "mttf(x)";
  List.iter
    (fun policy ->
      let alloc = Alloc.allocate func layout ~policy in
      let outcome = Interp.run_func alloc.Alloc.func in
      let used = Assignment.cells_in_use alloc.Alloc.assignment in
      let active =
        List.sort_uniq Int.compare
          (List.map (Policy.bank_of_cell layout ~banks) used)
      in
      let mask =
        Array.init (Layout.num_cells layout) (fun c ->
            List.mem (Policy.bank_of_cell layout ~banks c) active)
      in
      let temps =
        Driver.steady_temps ~leak_mask:mask model outcome.Interp.trace
          ~cell_of_var:(fun v -> Assignment.cell_of_var alloc.Alloc.assignment v)
      in
      let m = Metrics.summarize layout temps in
      let live_cells =
        Array.fold_left (fun acc on -> if on then acc + 1 else acc) 0 mask
      in
      let leak_mw =
        Params.default.Params.leakage_w *. float_of_int live_cells *. 1000.0
      in
      let rel = Reliability.assess layout temps in
      Printf.printf "%-15s %6d %12.3f %9.2f %9.2f %10.3f\n"
        (Policy.name policy) (List.length active) leak_mw m.Metrics.peak_k
        m.Metrics.range_k rel.Reliability.mttf_rel_min)
    [ Policy.Bank_pack banks; Policy.First_fit; Policy.Thermal_spread ];
  print_newline ();
  print_endline
    "bank-pack gates three of four banks (4x leakage saving) but runs\n\
     hotter and ages faster; thermal-spread is the mirror image. The\n\
     compiler has to pick a point on this trade-off (Section 4)."
