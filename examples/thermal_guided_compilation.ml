(* The §4 workflow end to end: analyse, find the critical variables,
   transform the program (promotion + live-range splitting), reallocate
   with a thermally-aware policy and verify the improvement against the
   RC thermal simulator — compilation guided by the analysis instead of
   by a feedback loop through a thermal emulator.

   Run with: dune exec examples/thermal_guided_compilation.exe *)

open Tdfa_ir
open Tdfa_floorplan
open Tdfa_thermal
open Tdfa_exec
open Tdfa_regalloc
open Tdfa_core
open Tdfa_workload
open Tdfa_optim

let layout = Layout.make ~rows:8 ~cols:8 ()
let model = Rc_model.build layout Params.default

let measure func (alloc : Alloc.result) =
  let outcome = Interp.run_func alloc.Alloc.func in
  let temps =
    Tdfa_exec.Driver.steady_temps model outcome.Interp.trace ~cell_of_var:(fun v ->
        Assignment.cell_of_var alloc.Alloc.assignment v)
  in
  ignore func;
  (outcome.Interp.cycles, Metrics.summarize layout temps)

let () =
  let func = Kernels.fir () in

  (* Step 1: naive compilation — first-fit assignment. *)
  let naive = Alloc.allocate func layout ~policy:Policy.First_fit in
  let naive_cycles, naive_metrics = measure func naive in

  (* Step 2: the thermal data-flow analysis predicts the hot spots and
     the variables responsible for them, with no thermal simulation in
     the loop. *)
  let outcome =
    Driver.outcome
      (Driver.run (Driver.default ~layout)
         (Driver.Assigned (naive.Alloc.func, naive.Alloc.assignment)))
  in
  let info = Analysis.info outcome in
  let cfg =
    Setup.config_of_assignment ~layout naive.Alloc.func naive.Alloc.assignment
  in
  let critical =
    Criticality.critical_vars cfg info naive.Alloc.func naive.Alloc.assignment
  in
  Printf.printf "analysis converged in %d iterations; critical variables: %s\n"
    info.Analysis.iterations
    (String.concat ", " (List.map Var.to_string critical));

  (* Step 3: transform — promote loop-invariant loads, split the critical
     live ranges, then reallocate spreading accesses across the RF. *)
  let transformed, prom = Promote.apply func in
  let transformed, split = Split_ranges.apply transformed ~vars:critical in
  Printf.printf "promoted %d loads, inserted %d copies\n"
    prom.Promote.promoted_addresses split.Split_ranges.copies_inserted;
  let tuned = Alloc.allocate transformed layout ~policy:Policy.Thermal_spread in
  let tuned_cycles, tuned_metrics = measure transformed tuned in

  (* Step 4: verify against the RC simulator. *)
  Printf.printf "\n%-22s %12s %12s\n" "" "naive" "thermal-aware";
  Printf.printf "%-22s %12.2f %12.2f\n" "peak (K)" naive_metrics.Metrics.peak_k
    tuned_metrics.Metrics.peak_k;
  Printf.printf "%-22s %12.2f %12.2f\n" "range (K)"
    naive_metrics.Metrics.range_k tuned_metrics.Metrics.range_k;
  Printf.printf "%-22s %12.2f %12.2f\n" "max gradient (K)"
    naive_metrics.Metrics.max_neighbor_gradient_k
    tuned_metrics.Metrics.max_neighbor_gradient_k;
  Printf.printf "%-22s %12d %12d\n" "cycles" naive_cycles tuned_cycles
