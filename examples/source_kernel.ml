(* Writing a kernel in TC source, compiling it through the front end and
   the full thermal-aware pipeline — the "early stages of compilation"
   of the paper's title, end to end from text.

   Run with: dune exec examples/source_kernel.exe *)

open Tdfa_floorplan
open Tdfa_thermal
open Tdfa_exec
open Tdfa_regalloc
open Tdfa_core

let source =
  {|
// Sum of squared differences between two 32-element vectors.
fn main() {
  var acc = 0;
  for (var i = 0; i < 32; i = i + 1) {
    var d = mem[i] - mem[1000 + i];
    acc = acc + d * d;
  }
  mem[5000] = acc;
  return acc;
}
|}

let layout = Layout.make ~rows:8 ~cols:8 ()
let model = Rc_model.build layout Params.default

let measured_peak func assignment =
  let o = Interp.run_func func in
  let temps =
    Tdfa_exec.Driver.steady_temps model o.Interp.trace ~cell_of_var:(fun v ->
        Assignment.cell_of_var assignment v)
  in
  ((Metrics.summarize layout temps).Metrics.peak_k, o.Interp.cycles)

let () =
  let func = Tdfa_lang.Front.compile_func_string source in
  Printf.printf "compiled TC source to %d IR instructions\n\n"
    (Tdfa_ir.Func.instr_count func);

  (* Naive compilation. *)
  let naive = Alloc.allocate func layout ~policy:Policy.First_fit in
  let naive_peak, naive_cycles =
    measured_peak naive.Alloc.func naive.Alloc.assignment
  in

  (* Thermal-aware pipeline. *)
  let r = Tdfa_optim.Compile.run ~layout func in
  let tuned_peak, tuned_cycles =
    measured_peak r.Tdfa_optim.Compile.func r.Tdfa_optim.Compile.assignment
  in
  let info = Analysis.info r.Tdfa_optim.Compile.analysis in
  Printf.printf "analysis converged in %d iterations; predicted peak %.2f K\n"
    info.Analysis.iterations
    (Thermal_state.peak (Analysis.peak_map info));
  Printf.printf "\n%-24s %10s %10s\n" "" "naive" "thermal";
  Printf.printf "%-24s %10.2f %10.2f\n" "measured peak (K)" naive_peak tuned_peak;
  Printf.printf "%-24s %10d %10d\n" "cycles" naive_cycles tuned_cycles
