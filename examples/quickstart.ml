(* Quickstart: build a small function, allocate its registers, run the
   thermal data-flow analysis and look at the predicted map.

   Run with: dune exec examples/quickstart.exe *)

open Tdfa_ir
open Tdfa_floorplan
open Tdfa_regalloc
open Tdfa_core

let () =
  (* 1. Build a function with the IR builder: sum the first n integers. *)
  let b = Builder.create ~name:"sum_to_n" ~params:[] in
  let acc = Builder.const b 0 in
  let i = Builder.const b 0 in
  let n = Builder.const b 100 in
  let one = Builder.const b 1 in
  let header = Label.of_string "header" in
  let body = Label.of_string "body" in
  let exit = Label.of_string "exit" in
  Builder.jump b header;
  Builder.start_block b header;
  let c = Builder.binop b Instr.Slt i n in
  Builder.branch b c body exit;
  Builder.start_block b body;
  Builder.emit b (Instr.Binop (Instr.Add, acc, acc, i));
  Builder.emit b (Instr.Binop (Instr.Add, i, i, one));
  Builder.jump b header;
  Builder.start_block b exit;
  Builder.ret b (Some acc);
  let func = Builder.finish b in
  print_endline (Printer.func_to_string func);

  (* 2. Allocate registers on an 8x8 register file with the first-fit
     policy (the hot-spot-prone default of Fig. 1a). *)
  let layout = Layout.make ~rows:8 ~cols:8 () in
  let alloc = Alloc.allocate func layout ~policy:Policy.First_fit in
  Printf.printf "\nregister pressure: %d, registers used: %d\n"
    alloc.Alloc.max_pressure
    (List.length (Assignment.cells_in_use alloc.Alloc.assignment));

  (* 3. Run the thermal data-flow analysis of Fig. 2 through the
     [Driver] facade (one config record, one entry point). *)
  let outcome =
    Driver.outcome
      (Driver.run (Driver.default ~layout)
         (Driver.Assigned (alloc.Alloc.func, alloc.Alloc.assignment)))
  in
  let info = Analysis.info outcome in
  Printf.printf "analysis %s after %d iterations\n"
    (if Analysis.converged outcome then "converged" else "did not converge")
    info.Analysis.iterations;

  (* 4. Inspect the predicted worst-case thermal map. *)
  let peak = Analysis.peak_map info in
  Printf.printf "predicted peak temperature: %.2f K\n\n"
    (Thermal_state.peak peak);
  print_string
    (Tdfa_thermal.Heatmap.render layout (Thermal_state.to_cell_array peak))
