(* Convergence behaviour of the Fig. 2 fixpoint: iterations as a function
   of the user parameter delta, and the non-convergence escape hatch when
   the transfer step is numerically unstable ("the thermal state of the
   program may be too difficult to predict at compile time", §4).

   Run with: dune exec examples/convergence_study.exe *)

open Tdfa_floorplan
open Tdfa_regalloc
open Tdfa_core
open Tdfa_workload

let layout = Layout.make ~rows:8 ~cols:8 ()

let () =
  let func = Kernels.matmul () in
  let alloc = Alloc.allocate func layout ~policy:Policy.First_fit in
  Printf.printf "%10s  %10s  %s\n" "delta (K)" "iterations" "converged";
  List.iter
    (fun delta_k ->
      let settings =
        { Analysis.default_settings with
          Analysis.delta_k;
          max_iterations = 1000;
        }
      in
      let outcome =
        Driver.outcome
          (Driver.run
             { (Driver.default ~layout) with Driver.settings }
             (Driver.Assigned (alloc.Alloc.func, alloc.Alloc.assignment)))
      in
      let info = Analysis.info outcome in
      Printf.printf "%10g  %10d  %b\n" delta_k info.Analysis.iterations
        (Analysis.converged outcome))
    [ 2.0; 1.0; 0.5; 0.1; 0.05; 0.01; 0.005; 0.001 ];

  (* Push the virtual timestep past the explicit-integration stability
     bound: the fixpoint oscillates and the analysis reports divergence
     with the offending instructions. *)
  let settings =
    { Analysis.default_settings with Analysis.max_iterations = 60 }
  in
  let outcome =
    Driver.outcome
      (Driver.run
         { (Driver.default ~layout) with
           Driver.settings;
           analysis_dt_s = Some 1.0e-4;
         }
         (Driver.Assigned (alloc.Alloc.func, alloc.Alloc.assignment)))
  in
  let info = Analysis.info outcome in
  Printf.printf
    "\nunstable step (dt = 1e-4 s): converged=%b after %d iterations, %d \
     instructions still moving\n"
    (Analysis.converged outcome)
    info.Analysis.iterations
    (List.length info.Analysis.unstable);
  let cfg =
    Setup.config_of_assignment ~analysis_dt_s:1.0e-4 ~layout alloc.Alloc.func
      alloc.Alloc.assignment
  in
  Printf.printf "transfer step stable at this dt? %b\n" (Transfer.is_stable cfg)
